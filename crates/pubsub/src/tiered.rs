//! Tiered sorted threshold lists: the storage layout behind the counting
//! match index and the covering buckets at large populations.
//!
//! # Why
//!
//! The routing index keeps sorted `(threshold, member)` lists per
//! `(attribute, operator)` — binary-searched on the match path, which is
//! cheap at any size, but *inserted into* on every install. A dense `Vec`
//! pays an O(list) memmove per insert: invisible at the 5000-subscription
//! bench points, linear at the 100k–1M populations the paper assumes. A
//! node near a stream source accumulates the forwarding entries of the
//! whole population, so at scale a single subscribe was moving megabytes.
//!
//! # Layout
//!
//! A [`TieredList`] is a sequence of sorted **runs** of bounded size
//! ([`RUN_MAX`]) under a fan-out **directory** of run-minimum keys:
//!
//! ```text
//! mins: [ k0,        k1,        k2,  ... ]   (directory, one key per run)
//! runs: [ [k0 ..],   [k1 ..],   [k2 ..] ]   (sorted, ≤ RUN_MAX entries)
//! ```
//!
//! An insert binary-searches the directory, then memmoves **at most one
//! run** (splitting a full run in half); a lookup or range walk descends
//! the directory and binary-searches within the boundary runs only. Small
//! lists are a single run — exactly the dense layout, one flat
//! binary-searched scan, so the populations below the covering buckets'
//! 32-member lazy threshold pay no directory overhead at all.
//!
//! Keys are ordered by [`f64::total_cmp`] and the insertion point falls
//! *before* any equal keys, exactly as the dense lists' `partition_point`
//! did — a tiered list holds its elements in the **identical global
//! order** as the dense `Vec` it replaces, so every walk that was
//! bit-identical before stays bit-identical (asserted element-for-element
//! by the differential twin suite in `tests/tiered_list.rs`).
//!
//! # Range walks
//!
//! Callers probe with monotone key predicates: [`TieredList::for_prefix`]
//! (a downward-closed predicate: satisfied keys form a prefix),
//! [`TieredList::for_suffix`] (upward-closed), and [`TieredList::for_eq`]
//! (an equal range bracketed by a strict/non-strict predicate pair). Each
//! walk visits whole interior runs and binary-searches only the boundary
//! runs, and yields run *slices* in ascending key order — the counting
//! walk's bump loop consumes the same contiguous `&[(f64, u32)]` windows
//! it consumed before. Both the numeric orderings (`<`, `<=`: the match
//! probes) and the `total_cmp` orderings (the covering probes) are
//! monotone along the storage order, `-0.0`/`0.0` included, so one walk
//! implementation serves both probe families.
//!
//! # Tombstones
//!
//! The lists store member references whose liveness the *owner* tracks;
//! dead references are skipped during walks and swept by
//! [`TieredList::retain_vals`] — per-run compaction: each run is retained
//! in place, emptied runs are dropped, and adjacent underfull runs merge.
//! No global rebuild, no order change among survivors. Owners trigger the
//! sweep with the same [`tombstones_dominate`] policy that governs every
//! other compaction in the routing plane.

/// Maximum entries per run: the bound on the memmove a single insert can
/// pay. Splits produce two half-full runs, so steady-state runs hold
/// 128–256 entries — small enough that one run is a couple of cache
/// lines' worth of work, large enough that the directory stays tiny
/// (a 1M-entry list has a ~8k-key directory).
pub const RUN_MAX: usize = 256;

/// Minimum tombstone count before any compaction is worth considering:
/// below this, rebuilds would churn more than the stale references cost.
pub const COMPACT_MIN_DEAD: usize = 16;

/// The single compaction policy of the routing plane: a tombstone
/// population *dominates* once it is past the fixed floor **and** at
/// least half the stored total. The routing table, the forwarded-up
/// sets, and the per-run sweeps of the tiered threshold lists all
/// compact on exactly this rule.
pub fn tombstones_dominate(dead: usize, total: usize) -> bool {
    dead > COMPACT_MIN_DEAD && dead * 2 >= total
}

/// A sorted `(key, value)` list stored as bounded runs under a directory
/// of run-minimum keys. See the module docs for the layout and the
/// ordering contract.
#[derive(Debug, Default, Clone)]
pub struct TieredList {
    /// Sorted runs in ascending key order; every run is non-empty and
    /// holds at most [`RUN_MAX`] entries.
    runs: Vec<Vec<(f64, u32)>>,
    /// `mins[i]` is `runs[i][0].0` — the fan-out directory.
    mins: Vec<f64>,
    len: usize,
}

impl TieredList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Builds a list from arbitrary-order entries: one sort, then runs
    /// are loaded directly at their split-steady-state size — the bulk
    /// path covering-bucket backfills use instead of N point inserts.
    pub fn from_unsorted(mut items: Vec<(f64, u32)>) -> Self {
        items.sort_by(|a, b| a.0.total_cmp(&b.0));
        let len = items.len();
        let mut runs: Vec<Vec<(f64, u32)>> = Vec::with_capacity(len.div_ceil(RUN_MAX / 2).max(1));
        let mut items = items.into_iter();
        loop {
            let run: Vec<(f64, u32)> = items.by_ref().take(RUN_MAX / 2).collect();
            if run.is_empty() {
                break;
            }
            runs.push(run);
        }
        let mins = runs.iter().map(|r| r[0].0).collect();
        Self { runs, mins, len }
    }

    /// Inserts `(key, value)` at the position the dense list's
    /// `partition_point(total_cmp is_lt)` would have chosen — before any
    /// equal keys — memmoving at most one run and splitting it when full.
    pub fn insert(&mut self, key: f64, value: u32) {
        self.len += 1;
        if self.runs.is_empty() {
            self.runs.push(vec![(key, value)]);
            self.mins.push(key);
            return;
        }
        // The last run whose minimum is strictly below the key holds the
        // insertion point (equal-key ties land at the end of that run,
        // which still precedes every stored equal key globally); a key
        // below every minimum goes to the front of the first run.
        let r = self.mins.partition_point(|m| m.total_cmp(&key).is_lt()).saturating_sub(1);
        let run = &mut self.runs[r];
        let at = run.partition_point(|(k, _)| k.total_cmp(&key).is_lt());
        run.insert(at, (key, value));
        self.mins[r] = run[0].0;
        if run.len() > RUN_MAX {
            let tail = run.split_off(run.len() / 2);
            self.mins.insert(r + 1, tail[0].0);
            self.runs.insert(r + 1, tail);
        }
    }

    /// All entries in ascending key order — identical, element for
    /// element, to the dense list this layout replaces.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u32)> + '_ {
        self.runs.iter().flatten().copied()
    }

    /// Visits the maximal prefix whose keys satisfy `pred` (which must be
    /// downward-closed along the storage order: once false, false for all
    /// larger keys), as run slices in ascending key order. Whole interior
    /// runs are passed without inspection; only the boundary run is
    /// binary-searched.
    pub fn for_prefix(&self, pred: impl Fn(f64) -> bool, mut f: impl FnMut(&[(f64, u32)])) {
        // Number of runs whose *minimum* satisfies the predicate: every
        // run before the last of those is entirely inside the prefix
        // (its keys are bounded by the next run's satisfying minimum).
        let r = self.mins.partition_point(|m| pred(*m));
        if r == 0 {
            return;
        }
        for run in &self.runs[..r - 1] {
            f(run);
        }
        let boundary = &self.runs[r - 1];
        let end = boundary.partition_point(|(k, _)| pred(*k));
        if end > 0 {
            f(&boundary[..end]);
        }
    }

    /// Visits the maximal suffix whose keys satisfy `pred` (upward-closed
    /// along the storage order), as run slices in ascending key order.
    pub fn for_suffix(&self, pred: impl Fn(f64) -> bool, mut f: impl FnMut(&[(f64, u32)])) {
        // Runs whose minimum fails the predicate: all but the last are
        // entirely outside the suffix; from the first satisfying minimum
        // on, runs are entirely inside.
        let s = self.mins.partition_point(|m| !pred(*m));
        if s > 0 {
            let boundary = &self.runs[s - 1];
            let start = boundary.partition_point(|(k, _)| !pred(*k));
            if start < boundary.len() {
                f(&boundary[start..]);
            }
        }
        for run in &self.runs[s..] {
            f(run);
        }
    }

    /// Visits the equal range bracketed by a strict/non-strict predicate
    /// pair — `lt(k)` ⇔ `k` is strictly below the probe, `le(k)` ⇔ `k`
    /// is at or below it — as run slices in ascending key order. This is
    /// the dense list's `[partition_point(lt), partition_point(le))`
    /// window, which may span runs.
    pub fn for_eq(
        &self,
        lt: impl Fn(f64) -> bool,
        le: impl Fn(f64) -> bool,
        mut f: impl FnMut(&[(f64, u32)]),
    ) {
        let start = self.mins.partition_point(|m| lt(*m)).saturating_sub(1);
        let end = self.mins.partition_point(|m| le(*m));
        for run in &self.runs[start..end] {
            let lo = run.partition_point(|(k, _)| lt(*k));
            let hi = run.partition_point(|(k, _)| le(*k));
            if lo < hi {
                f(&run[lo..hi]);
            }
        }
    }

    /// [`TieredList::for_eq`] with a caller-held directory cursor:
    /// `cursor` carries `mins.partition_point(lt)` forward across probes,
    /// so a non-decreasing probe sequence (a value-sorted batch) locates
    /// each equal range by a short linear advance instead of two
    /// directory descents. The window visited is identical to `for_eq`'s
    /// for any probe order — a probe below the cursor's position resets
    /// it and re-advances from the front — only the locating cost varies.
    pub fn for_eq_hinted(
        &self,
        cursor: &mut usize,
        lt: impl Fn(f64) -> bool,
        le: impl Fn(f64) -> bool,
        mut f: impl FnMut(&[(f64, u32)]),
    ) {
        let mut c = (*cursor).min(self.mins.len());
        if c > 0 && !lt(self.mins[c - 1]) {
            // Probe regressed below the hint: restart the advance.
            c = 0;
        }
        while c < self.mins.len() && lt(self.mins[c]) {
            c += 1;
        }
        *cursor = c;
        // `le` is implied by `lt`, so partition_point(le) >= c.
        let mut end = c;
        while end < self.mins.len() && le(self.mins[end]) {
            end += 1;
        }
        for run in &self.runs[c.saturating_sub(1)..end] {
            let lo = run.partition_point(|(k, _)| lt(*k));
            let hi = run.partition_point(|(k, _)| le(*k));
            if lo < hi {
                f(&run[lo..hi]);
            }
        }
    }

    /// Per-run tombstone sweep: retains the entries `keep` accepts, in
    /// place, run by run; emptied runs are dropped and adjacent underfull
    /// survivors merged (never past the split steady state, so a sweep
    /// cannot force the next insert to immediately re-split). Relative
    /// order of survivors is unchanged.
    pub fn retain_vals(&mut self, mut keep: impl FnMut(u32) -> bool) {
        let mut swept: Vec<Vec<(f64, u32)>> = Vec::with_capacity(self.runs.len());
        for mut run in self.runs.drain(..) {
            run.retain(|&(_, v)| keep(v));
            if run.is_empty() {
                continue;
            }
            match swept.last_mut() {
                Some(prev) if prev.len() + run.len() <= RUN_MAX / 2 => prev.extend(run),
                _ => swept.push(run),
            }
        }
        self.runs = swept;
        self.mins.clear();
        self.mins.extend(self.runs.iter().map(|r| r[0].0));
        self.len = self.runs.iter().map(Vec::len).sum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(list: &TieredList) -> Vec<(f64, u32)> {
        list.iter().collect()
    }

    #[test]
    fn insert_matches_dense_partition_point_order() {
        let keys = [5.0, 1.0, 3.0, 3.0, -2.0, 3.0, 9.0, -0.0, 0.0, 7.5];
        let mut tiered = TieredList::new();
        let mut oracle: Vec<(f64, u32)> = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            tiered.insert(k, i as u32);
            let at = oracle.partition_point(|(t, _)| t.total_cmp(&k).is_lt());
            oracle.insert(at, (k, i as u32));
        }
        assert_eq!(dense(&tiered).len(), oracle.len());
        for (a, b) in dense(&tiered).iter().zip(&oracle) {
            assert_eq!(a.0.total_cmp(&b.0), std::cmp::Ordering::Equal);
            assert_eq!(a.1, b.1);
        }
    }

    #[test]
    fn runs_split_and_stay_bounded() {
        let mut list = TieredList::new();
        for i in 0..10_000u32 {
            // Adversarial order: alternating ends plus a dense middle.
            let k = match i % 3 {
                0 => f64::from(i),
                1 => -f64::from(i),
                _ => f64::from(i % 7),
            };
            list.insert(k, i);
        }
        assert_eq!(list.len(), 10_000);
        assert!(list.runs.iter().all(|r| !r.is_empty() && r.len() <= RUN_MAX));
        assert_eq!(list.mins.len(), list.runs.len());
        for (i, run) in list.runs.iter().enumerate() {
            assert_eq!(list.mins[i].total_cmp(&run[0].0), std::cmp::Ordering::Equal);
            assert!(run.windows(2).all(|w| w[0].0.total_cmp(&w[1].0).is_le()));
        }
        let flat = dense(&list);
        assert!(flat.windows(2).all(|w| w[0].0.total_cmp(&w[1].0).is_le()));
    }

    #[test]
    fn from_unsorted_equals_point_inserts() {
        let items: Vec<(f64, u32)> = (0..700u32).map(|i| (f64::from(i * 7919 % 523), i)).collect();
        let bulk = TieredList::from_unsorted(items.clone());
        assert_eq!(bulk.len(), items.len());
        let flat = dense(&bulk);
        assert!(flat.windows(2).all(|w| w[0].0.total_cmp(&w[1].0).is_le()));
        // Same multiset: sort both by (key, value) and compare.
        let mut a: Vec<(u64, u32)> = flat.iter().map(|&(k, v)| (k.to_bits(), v)).collect();
        let mut b: Vec<(u64, u32)> = items.iter().map(|&(k, v)| (k.to_bits(), v)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn walks_match_dense_partition_points() {
        let mut list = TieredList::new();
        let mut oracle: Vec<(f64, u32)> = Vec::new();
        for i in 0..3_000u32 {
            let k = f64::from(i % 600) / 2.0;
            list.insert(k, i);
            let at = oracle.partition_point(|(t, _)| t.total_cmp(&k).is_lt());
            oracle.insert(at, (k, i));
        }
        for v in [0.0, 0.25, 150.0, 299.5, -1.0, 1_000.0] {
            let mut got: Vec<u32> = Vec::new();
            list.for_prefix(|k| k < v, |run| got.extend(run.iter().map(|&(_, m)| m)));
            let end = oracle.partition_point(|(t, _)| *t < v);
            let want: Vec<u32> = oracle[..end].iter().map(|&(_, m)| m).collect();
            assert_eq!(got, want, "prefix < {v}");

            let mut got: Vec<u32> = Vec::new();
            list.for_suffix(|k| k >= v, |run| got.extend(run.iter().map(|&(_, m)| m)));
            let start = oracle.partition_point(|(t, _)| *t < v);
            let want: Vec<u32> = oracle[start..].iter().map(|&(_, m)| m).collect();
            assert_eq!(got, want, "suffix >= {v}");

            let mut got: Vec<u32> = Vec::new();
            list.for_eq(|k| k < v, |k| k <= v, |run| got.extend(run.iter().map(|&(_, m)| m)));
            let lo = oracle.partition_point(|(t, _)| *t < v);
            let hi = oracle.partition_point(|(t, _)| *t <= v);
            let want: Vec<u32> = oracle[lo..hi].iter().map(|&(_, m)| m).collect();
            assert_eq!(got, want, "eq {v}");
        }
    }

    #[test]
    fn signed_zero_walks_are_symmetric() {
        // Storage order is total_cmp (-0.0 before 0.0); numeric probes
        // must treat the pair as one equal range.
        let mut list = TieredList::new();
        list.insert(0.0, 0);
        list.insert(-0.0, 1);
        list.insert(-1.0, 2);
        list.insert(1.0, 3);
        let mut got: Vec<u32> = Vec::new();
        list.for_eq(|k| k < 0.0, |k| k <= 0.0, |run| got.extend(run.iter().map(|&(_, m)| m)));
        assert_eq!(got, vec![1, 0], "both zeros in the equal range, storage order");
        let mut got: Vec<u32> = Vec::new();
        list.for_prefix(|k| k < -0.0, |run| got.extend(run.iter().map(|&(_, m)| m)));
        assert_eq!(got, vec![2], "numeric < -0.0 excludes both zeros");
        let mut got: Vec<u32> = Vec::new();
        list.for_suffix(|k| k >= -0.0, |run| got.extend(run.iter().map(|&(_, m)| m)));
        assert_eq!(got, vec![1, 0, 3], "numeric >= -0.0 includes both zeros");
    }

    #[test]
    fn retain_vals_sweeps_per_run_and_merges() {
        let mut list = TieredList::new();
        for i in 0..5_000u32 {
            list.insert(f64::from(i), i);
        }
        let runs_before = list.runs.len();
        list.retain_vals(|v| v % 5 == 0);
        assert_eq!(list.len(), 1_000);
        assert!(list.runs.len() < runs_before, "underfull neighbours merged");
        assert!(list.runs.iter().all(|r| !r.is_empty() && r.len() <= RUN_MAX));
        let flat = dense(&list);
        assert!(flat.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(flat.iter().all(|&(_, v)| v % 5 == 0));
        // Survivor order unchanged.
        assert_eq!(
            flat.iter().map(|&(_, v)| v).collect::<Vec<_>>(),
            (0..5_000).step_by(5).collect::<Vec<u32>>()
        );
        // Sweeping everything leaves a valid empty list that still accepts inserts.
        list.retain_vals(|_| false);
        assert!(list.is_empty());
        list.insert(3.0, 7);
        assert_eq!(dense(&list), vec![(3.0, 7)]);
    }

    #[test]
    fn for_eq_hinted_matches_for_eq_any_probe_order() {
        // Dense key space with heavy duplication plus the signed-zero
        // pair, spread across many runs.
        let items: Vec<(f64, u32)> = (0..3000u32)
            .map(|i| {
                let k = match i % 5 {
                    0 => f64::from(i % 40),
                    1 => -0.0,
                    2 => 0.0,
                    _ => f64::from(i * 7919 % 97),
                };
                (k, i)
            })
            .collect();
        let list = TieredList::from_unsorted(items);
        // Ascending, descending, and shuffled probe sequences, one
        // shared cursor per sequence — regressions must reset it without
        // changing the visited window.
        let ascending: Vec<f64> = (-2..100).map(f64::from).chain([-0.0, 0.0]).collect();
        let mut descending = ascending.clone();
        descending.reverse();
        let shuffled: Vec<f64> =
            (0..200u32).map(|i| f64::from(i.wrapping_mul(2654435761) % 103) - 2.0).collect();
        for probes in [ascending, descending, shuffled] {
            let mut cursor = 0usize;
            for v in probes {
                let lt = |k: f64| k.total_cmp(&v).is_lt();
                let le = |k: f64| k.total_cmp(&v).is_le();
                let mut plain: Vec<(f64, u32)> = Vec::new();
                list.for_eq(lt, le, |run| plain.extend_from_slice(run));
                let mut hinted: Vec<(f64, u32)> = Vec::new();
                list.for_eq_hinted(&mut cursor, lt, le, |run| hinted.extend_from_slice(run));
                assert_eq!(plain.len(), hinted.len(), "probe {v}");
                for (a, b) in plain.iter().zip(&hinted) {
                    assert_eq!(a.0.total_cmp(&b.0), std::cmp::Ordering::Equal);
                    assert_eq!(a.1, b.1, "probe {v}");
                }
            }
        }
    }

    #[test]
    fn compaction_policy_boundaries() {
        // The floor: at or below COMPACT_MIN_DEAD tombstones, never.
        assert!(!tombstones_dominate(COMPACT_MIN_DEAD, 0));
        assert!(!tombstones_dominate(16, 20));
        // Above the floor, domination needs dead * 2 >= total.
        assert!(tombstones_dominate(17, 34));
        assert!(!tombstones_dominate(17, 35));
        assert!(tombstones_dominate(20, 40));
        assert!(!tombstones_dominate(20, 41));
        assert!(tombstones_dominate(100, 100));
    }
}
