//! Containment and merging of window-based continuous queries (§2.1).
//!
//! When several queries with overlapping results are placed on the same
//! processor, COSMOS "compose\[s\] a new query Q whose result is the superset
//! of the overlapping queries and only inserts this Q into the processing
//! engine"; each user then retrieves their own result by a Pub/Sub
//! subscription carrying *residual* projection and filters (the paper's
//! `p3₂` / `p4₂` example, which splits `Q5`'s stream back into `Q3`'s and
//! `Q4`'s results).
//!
//! The containment theory extends classical conjunctive-query containment
//! with windows (ref \[25\]): `Q` covers `Q'` when, relation by relation,
//! `Q`'s windows contain `Q'`'s, `Q`'s filters are implied by `Q'`'s,
//! the join predicates agree, and `Q`'s projection retains everything `Q'`
//! projects.

use crate::ast::{CmpOp, Predicate, ProjItem, Query, QueryId};
use crate::predicate::{implies, weakest_common};

/// Alias mapping `specific alias → general alias` built by matching streams.
///
/// Returns `None` when the two queries do not read the same multiset of
/// streams. Duplicate stream names match in `FROM` order.
fn match_relations<'a>(general: &'a Query, specific: &'a Query) -> Option<Vec<(usize, usize)>> {
    if general.relations.len() != specific.relations.len() {
        return None;
    }
    let mut used = vec![false; general.relations.len()];
    let mut pairs = Vec::with_capacity(general.relations.len());
    for (si, srel) in specific.relations.iter().enumerate() {
        let gi = general
            .relations
            .iter()
            .enumerate()
            .position(|(gi, grel)| !used[gi] && grel.stream == srel.stream)?;
        used[gi] = true;
        pairs.push((si, gi));
    }
    Some(pairs)
}

/// Renames relation aliases in a predicate according to `map(old) -> new`.
fn rename_predicate(p: &Predicate, map: &dyn Fn(&str) -> String) -> Predicate {
    match p {
        Predicate::Cmp { attr, op, value } => Predicate::Cmp {
            attr: crate::ast::AttrRef { relation: map(&attr.relation), attr: attr.attr.clone() },
            op: *op,
            value: value.clone(),
        },
        Predicate::JoinCmp { left, op, right } => Predicate::JoinCmp {
            left: crate::ast::AttrRef { relation: map(&left.relation), attr: left.attr.clone() },
            op: *op,
            right: crate::ast::AttrRef { relation: map(&right.relation), attr: right.attr.clone() },
        },
        Predicate::TimeDelta { left, right, min_ms, max_ms } => Predicate::TimeDelta {
            left: map(left),
            right: map(right),
            min_ms: *min_ms,
            max_ms: *max_ms,
        },
    }
}

fn rename_proj(item: &ProjItem, map: &dyn Fn(&str) -> String) -> ProjItem {
    match item {
        ProjItem::All => ProjItem::All,
        ProjItem::AllOf(a) => ProjItem::AllOf(map(a)),
        ProjItem::Attr(ar) => ProjItem::Attr(crate::ast::AttrRef {
            relation: map(&ar.relation),
            attr: ar.attr.clone(),
        }),
        ProjItem::Agg { func, attr } => ProjItem::Agg {
            func: *func,
            attr: crate::ast::AttrRef { relation: map(&attr.relation), attr: attr.attr.clone() },
        },
    }
}

/// Does projection item `g` retain everything `s` projects?
///
/// Aggregates only cover themselves: `AVG(S.x)` over a *wider* window is a
/// different value, not a superset, so even `*` does not cover an
/// aggregate item.
fn proj_item_covers(g: &ProjItem, s: &ProjItem) -> bool {
    match (g, s) {
        (ProjItem::Agg { .. }, _) | (_, ProjItem::Agg { .. }) => g == s,
        (ProjItem::All, _) => true,
        (ProjItem::AllOf(a), ProjItem::AllOf(b)) => a == b,
        (ProjItem::AllOf(a), ProjItem::Attr(ar)) => *a == ar.relation,
        (ProjItem::Attr(a), ProjItem::Attr(b)) => a == b,
        _ => false,
    }
}

/// Returns `true` when `general`'s continuous result stream is a superset of
/// `specific`'s — i.e. a user subscribed to `general`'s output with
/// `specific`'s residual filters would see exactly `specific`'s result.
///
/// Sound but not complete (see [`implies`]).
///
/// # Examples
///
/// ```
/// use cosmos_query::{parse_query, covers};
///
/// let q4 = parse_query(
///     "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp \
///      FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2 \
///      WHERE S1.snowHeight > S2.snowHeight")?;
/// let q3 = parse_query(
///     "SELECT S2.snowHeight, S2.timestamp \
///      FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2 \
///      WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10")?;
/// assert!(covers(&q4, &q3));
/// assert!(!covers(&q3, &q4));
/// # Ok::<(), cosmos_query::ParseError>(())
/// ```
pub fn covers(general: &Query, specific: &Query) -> bool {
    let Some(pairs) = match_relations(general, specific) else {
        return false;
    };
    // specific alias -> general alias
    let alias_of = |s: &str| -> String {
        for &(si, gi) in &pairs {
            if specific.relations[si].alias == s {
                return general.relations[gi].alias.clone();
            }
        }
        s.to_string()
    };

    // 1. Window containment per matched relation.
    for &(si, gi) in &pairs {
        if !general.relations[gi].window.contains(&specific.relations[si].window) {
            return false;
        }
    }

    // 2. Join predicates must agree (set equality up to flipping), after
    //    renaming the specific side into the general side's aliases.
    let gen_joins: Vec<&Predicate> = general.join_predicates().collect();
    let spec_joins: Vec<Predicate> =
        specific.join_predicates().map(|p| rename_predicate(p, &alias_of)).collect();
    if gen_joins.len() != spec_joins.len() {
        return false;
    }
    let same_join = |a: &Predicate, b: &Predicate| implies(a, b) && implies(b, a);
    for g in &gen_joins {
        if !spec_joins.iter().any(|s| same_join(g, s)) {
            return false;
        }
    }

    // 3. Every selection filter of the general query must be implied by the
    //    specific query's conjunction (single-predicate witness suffices for
    //    the comparison fragment).
    let spec_sels: Vec<Predicate> =
        specific.selection_predicates().map(|p| rename_predicate(p, &alias_of)).collect();
    for g in general.selection_predicates() {
        if !spec_sels.iter().any(|s| implies(s, g)) {
            return false;
        }
    }

    // 4. Projection: everything the specific query projects must survive.
    let spec_proj: Vec<ProjItem> =
        specific.projection.iter().map(|p| rename_proj(p, &alias_of)).collect();
    for s in &spec_proj {
        if !general.projection.iter().any(|g| proj_item_covers(g, s)) {
            return false;
        }
    }
    true
}

/// The residual subscription a user installs to split their query's result
/// out of a shared (merged) result stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualSubscription {
    /// Which query this residual reconstructs.
    pub query: QueryId,
    /// The user's original projection, applied on the shared stream.
    pub projection: Vec<ProjItem>,
    /// Filters re-imposing the user's original selection predicates **and**
    /// original window bounds (as [`Predicate::TimeDelta`] constraints).
    pub filters: Vec<Predicate>,
}

/// A merged (covering) query plus the residual subscriptions reconstructing
/// each input query's result from the merged stream.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedQuery {
    /// The covering query actually inserted into the processing engine.
    pub query: Query,
    /// One residual per merged input query.
    pub residuals: Vec<ResidualSubscription>,
}

/// Window-containment bounds of a query as pairwise [`Predicate::TimeDelta`]
/// constraints between its relations (the paper's
/// `−30(minute) ≤ S1.timestamp − S2.timestamp ≤ 0`).
///
/// For relations `ri [wi]`, `rj [wj]`, a join output pairs a tuple of `ri`
/// with one of `rj` only when `−wi ≤ ts(ri) − ts(rj) ≤ wj` (a tuple may be
/// up to its own window's width older than the tuple that joins with it).
/// Unbounded windows impose no constraint on their side.
pub fn window_bound_predicates(q: &Query) -> Vec<Predicate> {
    let mut out = Vec::new();
    for i in 0..q.relations.len() {
        for j in (i + 1)..q.relations.len() {
            let (ri, rj) = (&q.relations[i], &q.relations[j]);
            let lo = ri.window.width_ms().map(|w| -(w as i64));
            let hi = rj.window.width_ms().map(|w| w as i64);
            if lo.is_none() && hi.is_none() {
                continue;
            }
            out.push(Predicate::TimeDelta {
                left: ri.alias.clone(),
                right: rj.alias.clone(),
                min_ms: lo.unwrap_or(i64::MIN / 2),
                max_ms: hi.unwrap_or(i64::MAX / 2),
            });
        }
    }
    out
}

fn dedup_projection(items: Vec<ProjItem>) -> Vec<ProjItem> {
    let mut out: Vec<ProjItem> = Vec::new();
    for item in items {
        if out.iter().any(|g| proj_item_covers(g, &item)) {
            continue;
        }
        out.retain(|g| !proj_item_covers(&item, g));
        out.push(item);
    }
    out
}

/// Merges two compatible queries into a covering query.
///
/// Returns `None` when the queries are not mergeable (different streams or
/// join predicates). The result's windows are per-relation unions, its
/// selection filters are the weakest common consequences of the two input
/// filter sets (constraints present in only one input are dropped), and its
/// projection is the union. Aliases follow `a`.
pub fn merge_pair(a: &Query, b: &Query) -> Option<Query> {
    let pairs = match_relations(a, b)?;
    let alias_of = |s: &str| -> String {
        for &(bi, ai) in &pairs {
            if b.relations[bi].alias == s {
                return a.relations[ai].alias.clone();
            }
        }
        s.to_string()
    };

    // Join predicates must agree.
    let a_joins: Vec<&Predicate> = a.join_predicates().collect();
    let b_joins: Vec<Predicate> =
        b.join_predicates().map(|p| rename_predicate(p, &alias_of)).collect();
    if a_joins.len() != b_joins.len() {
        return None;
    }
    let same_join = |x: &Predicate, y: &Predicate| implies(x, y) && implies(y, x);
    for g in &a_joins {
        if !b_joins.iter().any(|s| same_join(g, s)) {
            return None;
        }
    }

    // Windows: per-relation union.
    let mut relations = a.relations.clone();
    for &(bi, ai) in &pairs {
        relations[ai].window = a.relations[ai].window.union(&b.relations[bi].window);
    }

    // Selection filters: keep the weakest common consequence of any pair.
    let b_sels: Vec<Predicate> =
        b.selection_predicates().map(|p| rename_predicate(p, &alias_of)).collect();
    let mut merged_sels: Vec<Predicate> = Vec::new();
    for pa in a.selection_predicates() {
        for pb in &b_sels {
            if let Some(r) = weakest_common(pa, pb) {
                if !merged_sels.iter().any(|e| implies(e, &r) && implies(&r, e)) {
                    merged_sels.push(r);
                }
            }
        }
    }

    // Projection union.
    let b_proj: Vec<ProjItem> = b.projection.iter().map(|p| rename_proj(p, &alias_of)).collect();
    let projection = dedup_projection(a.projection.iter().cloned().chain(b_proj).collect());

    let mut predicates: Vec<Predicate> = a.join_predicates().cloned().collect();
    predicates.extend(merged_sels);
    Some(Query { projection, relations, predicates })
}

/// Merges a set of queries into one covering query plus per-query residual
/// subscriptions (the full §2.1 mechanism).
///
/// Returns `None` when the input is empty or any pair fails to merge. Each
/// residual contains the input query's original projection (renamed to the
/// merged query's aliases), its original selection filters, and its window
/// bounds as time-delta constraints — which is exactly what the paper's
/// `p3₂`/`p4₂` subscriptions carry.
///
/// # Examples
///
/// ```
/// use cosmos_query::{parse_query, merge_queries, QueryId};
///
/// let q3 = parse_query(
///     "SELECT S2.* FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2 \
///      WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10")?;
/// let q4 = parse_query(
///     "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp \
///      FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2 \
///      WHERE S1.snowHeight > S2.snowHeight")?;
/// let merged = merge_queries(&[(QueryId(3), &q3), (QueryId(4), &q4)]).unwrap();
/// // The covering query has the 1-hour window and no snowHeight filter (Q5).
/// assert_eq!(merged.query.selection_predicates().count(), 0);
/// assert_eq!(merged.residuals.len(), 2);
/// # Ok::<(), cosmos_query::ParseError>(())
/// ```
pub fn merge_queries(inputs: &[(QueryId, &Query)]) -> Option<MergedQuery> {
    let (&(_, first), rest) = inputs.split_first()?;
    let mut merged = first.clone();
    for &(_, q) in rest {
        merged = merge_pair(&merged, q)?;
    }
    // Residuals are computed against the *final* merged query's aliases.
    let mut residuals = Vec::with_capacity(inputs.len());
    for &(id, q) in inputs {
        let pairs = match_relations(&merged, q)?;
        let alias_of = |s: &str| -> String {
            for &(qi, mi) in &pairs {
                if q.relations[qi].alias == s {
                    return merged.relations[mi].alias.clone();
                }
            }
            s.to_string()
        };
        let projection: Vec<ProjItem> =
            q.projection.iter().map(|p| rename_proj(p, &alias_of)).collect();
        let mut filters: Vec<Predicate> =
            q.selection_predicates().map(|p| rename_predicate(p, &alias_of)).collect();
        // Window bounds, in the merged aliases. Skip bounds the merged
        // query's own windows already enforce exactly.
        let q_renamed = Query {
            projection: projection.clone(),
            relations: pairs
                .iter()
                .map(|&(qi, mi)| crate::ast::RelationRef {
                    stream: q.relations[qi].stream.clone(),
                    window: q.relations[qi].window,
                    alias: merged.relations[mi].alias.clone(),
                })
                .collect(),
            predicates: vec![],
        };
        for bound in window_bound_predicates(&q_renamed) {
            let merged_bounds = window_bound_predicates(&merged);
            let already = merged_bounds.iter().any(|m| implies(m, &bound));
            if !already {
                filters.push(bound);
            }
        }
        residuals.push(ResidualSubscription { query: id, projection, filters });
    }
    Some(MergedQuery { query: merged, residuals })
}

/// Checks equivalence: each query covers the other.
pub fn equivalent(a: &Query, b: &Query) -> bool {
    covers(a, b) && covers(b, a)
}

/// The per-attribute threshold skeleton a *covering* (weaker) comparison
/// must satisfy, derived from the specific side's indexable comparisons on
/// one attribute.
///
/// Covering indexes (the Pub/Sub routing tables' covering-based merge)
/// reduce "which installed subscriptions could cover this one?" to a
/// candidate search over `(attribute, operator, threshold)` triples: a
/// general comparison `attr op t_g` can only be implied by the specific
/// conjunction when its threshold falls inside the bound this skeleton
/// records — lower-bound operators (`>`/`>=`) need `t_g ≤ lower_max`,
/// upper-bound operators (`<`/`<=`) need `t_g ≥ upper_min`, and equality
/// needs `t_g ∈ eq_values`. The bounds are *inclusive
/// over-approximations* of [`crate::predicate::threshold_implies`]
/// (strict-vs-nonstrict operator pairs are rounded outward), so a range
/// probe yields a superset of the true coverers and a final exact
/// confirmation pass stays necessary — exactly the sound-but-not-complete
/// contract covering already has.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoverBounds {
    /// Largest lower-bound (`>`/`>=`) threshold a coverer may carry on
    /// this attribute, or `None` when nothing on the specific side can
    /// imply a lower bound at all.
    pub lower_max: Option<f64>,
    /// Smallest upper-bound (`<`/`<=`) threshold a coverer may carry, or
    /// `None` when nothing can imply an upper bound.
    pub upper_min: Option<f64>,
    /// The only values a coverer's `=` comparison may take (numeric
    /// equality is implied solely by an equal point constraint).
    pub eq_values: Vec<f64>,
}

/// Builds the [`CoverBounds`] for one attribute from the specific side's
/// `(operator, threshold)` comparisons on it. NaN thresholds imply
/// nothing and contribute nothing.
pub fn coverer_bounds(comps: impl IntoIterator<Item = (CmpOp, f64)>) -> CoverBounds {
    let mut bounds = CoverBounds::default();
    for (op, t) in comps {
        if t.is_nan() {
            continue;
        }
        match op {
            // `attr > t` / `attr >= t` implies weaker lower bounds up to
            // `t` itself; `attr = t` implies lower bounds below `t`.
            CmpOp::Gt | CmpOp::Ge => {
                bounds.lower_max = Some(bounds.lower_max.map_or(t, |m| m.max(t)));
            }
            CmpOp::Lt | CmpOp::Le => {
                bounds.upper_min = Some(bounds.upper_min.map_or(t, |m| m.min(t)));
            }
            CmpOp::Eq => {
                bounds.lower_max = Some(bounds.lower_max.map_or(t, |m| m.max(t)));
                bounds.upper_min = Some(bounds.upper_min.map_or(t, |m| m.min(t)));
                bounds.eq_values.push(t);
            }
            // `!=` implies only `!=`, which is never part of a covering
            // skeleton (its satisfied set is not an interval).
            CmpOp::Ne => {}
        }
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Window;
    use crate::parser::parse_query;

    fn q3() -> Query {
        parse_query(
            "SELECT S2.* FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2 \
             WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10",
        )
        .unwrap()
    }

    fn q4() -> Query {
        parse_query(
            "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp \
             FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2 \
             WHERE S1.snowHeight > S2.snowHeight",
        )
        .unwrap()
    }

    fn q5() -> Query {
        parse_query(
            "SELECT S2.*, S1.snowHeight, S1.timestamp \
             FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2 \
             WHERE S1.snowHeight > S2.snowHeight",
        )
        .unwrap()
    }

    #[test]
    fn paper_q5_covers_q3_and_q4() {
        assert!(covers(&q5(), &q3()));
        assert!(covers(&q5(), &q4()));
        assert!(!covers(&q3(), &q5()));
        assert!(!covers(&q4(), &q3())); // Q3 projects S2.*, Q4 keeps only two S2 attrs
    }

    #[test]
    fn merging_q3_q4_reconstructs_q5() {
        let merged = merge_queries(&[(QueryId(3), &q3()), (QueryId(4), &q4())]).unwrap();
        assert!(equivalent(&merged.query, &q5()), "merged = {}", merged.query);
        // Residual for Q3 carries the snowHeight filter and the 30-minute bound.
        let r3 = &merged.residuals[0];
        assert!(r3
            .filters
            .iter()
            .any(|f| matches!(f, Predicate::Cmp { attr, .. } if attr.attr == "snowHeight")));
        assert!(r3.filters.iter().any(|f| matches!(
            f,
            Predicate::TimeDelta { min_ms, max_ms, .. } if *min_ms == -30 * 60_000 && *max_ms == 0
        )));
        // Residual for Q4's window equals the merged window, so only the
        // (redundant) bound may be dropped; no snowHeight filter.
        let r4 = &merged.residuals[1];
        assert!(!r4.filters.iter().any(|f| f.is_selection()));
    }

    #[test]
    fn window_bounds_for_paper_example() {
        let bounds = window_bound_predicates(&q3());
        assert_eq!(bounds.len(), 1);
        match &bounds[0] {
            Predicate::TimeDelta { left, right, min_ms, max_ms } => {
                assert_eq!(left, "S1");
                assert_eq!(right, "S2");
                assert_eq!(*min_ms, -(30 * 60_000));
                assert_eq!(*max_ms, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn covers_requires_window_containment() {
        let wide = parse_query("SELECT * FROM R [Range 2 Hours]").unwrap();
        let narrow = parse_query("SELECT * FROM R [Range 1 Hour]").unwrap();
        assert!(covers(&wide, &narrow));
        assert!(!covers(&narrow, &wide));
    }

    #[test]
    fn covers_requires_filter_weakening() {
        let weak = parse_query("SELECT * FROM R [Now] WHERE R.a > 5").unwrap();
        let strong = parse_query("SELECT * FROM R [Now] WHERE R.a > 10").unwrap();
        assert!(covers(&weak, &strong));
        assert!(!covers(&strong, &weak));
        let unrelated = parse_query("SELECT * FROM R [Now] WHERE R.b > 0").unwrap();
        assert!(!covers(&unrelated, &weak));
    }

    #[test]
    fn covers_requires_same_streams() {
        let a = parse_query("SELECT * FROM R [Now]").unwrap();
        let b = parse_query("SELECT * FROM S [Now]").unwrap();
        assert!(!covers(&a, &b));
        let two = parse_query("SELECT * FROM R [Now], S [Now] WHERE R.x = S.x").unwrap();
        assert!(!covers(&a, &two));
    }

    #[test]
    fn covers_requires_same_joins() {
        let eq = parse_query("SELECT * FROM R [Now], S [Now] WHERE R.b = S.b").unwrap();
        let lt = parse_query("SELECT * FROM R [Now], S [Now] WHERE R.b < S.b").unwrap();
        assert!(!covers(&eq, &lt));
        // Flipped join orientation is the same predicate.
        let flipped = parse_query("SELECT * FROM R [Now], S [Now] WHERE S.b = R.b").unwrap();
        assert!(covers(&eq, &flipped));
        assert!(covers(&flipped, &eq));
    }

    #[test]
    fn merge_incompatible_returns_none() {
        let a = parse_query("SELECT * FROM R [Now], S [Now] WHERE R.b = S.b").unwrap();
        let b = parse_query("SELECT * FROM R [Now], S [Now] WHERE R.b < S.b").unwrap();
        assert!(merge_pair(&a, &b).is_none());
        let c = parse_query("SELECT * FROM T [Now]").unwrap();
        assert!(merge_pair(&a, &c).is_none());
    }

    #[test]
    fn merge_drops_one_sided_filters_and_widens_windows() {
        let a = parse_query("SELECT R.x FROM R [Range 10 Seconds] WHERE R.a > 10").unwrap();
        let b = parse_query("SELECT R.y FROM R [Range 20 Seconds] WHERE R.b < 3").unwrap();
        let m = merge_pair(&a, &b).unwrap();
        assert_eq!(m.relations[0].window, Window::Range(20_000));
        // Filters on different attributes have no common consequence → dropped.
        assert_eq!(m.selection_predicates().count(), 0);
        assert_eq!(m.projection.len(), 2);
        assert!(covers(&m, &a));
        assert!(covers(&m, &b));
    }

    #[test]
    fn merge_keeps_weakest_common_filter() {
        let a = parse_query("SELECT * FROM R [Now] WHERE R.a > 10").unwrap();
        let b = parse_query("SELECT * FROM R [Now] WHERE R.a > 20").unwrap();
        let m = merge_pair(&a, &b).unwrap();
        let sels: Vec<&Predicate> = m.selection_predicates().collect();
        assert_eq!(sels.len(), 1);
        assert!(implies(
            &parse_query("SELECT * FROM R [Now] WHERE R.a > 10").unwrap().predicates[0],
            sels[0]
        ));
        assert!(covers(&m, &a));
        assert!(covers(&m, &b));
    }

    #[test]
    fn merged_query_covers_all_inputs_in_a_chain() {
        let qs: Vec<Query> = (1..=4)
            .map(|i| {
                parse_query(&format!(
                    "SELECT R.x FROM R [Range {i} Minutes], S [Now] WHERE R.k = S.k AND R.a > {}",
                    i * 10
                ))
                .unwrap()
            })
            .collect();
        let inputs: Vec<(QueryId, &Query)> =
            qs.iter().enumerate().map(|(i, q)| (QueryId(i as u64), q)).collect();
        let merged = merge_queries(&inputs).unwrap();
        for q in &qs {
            assert!(covers(&merged.query, q), "merged {} should cover {}", merged.query, q);
        }
        assert_eq!(merged.residuals.len(), 4);
    }

    #[test]
    fn alias_renaming_is_handled() {
        let a = parse_query("SELECT X.v FROM Stream1 [Now] X, Stream2 [Now] Y WHERE X.k = Y.k")
            .unwrap();
        let b = parse_query("SELECT P.v FROM Stream1 [Now] P, Stream2 [Now] Q WHERE P.k = Q.k")
            .unwrap();
        assert!(covers(&a, &b));
        assert!(equivalent(&a, &b));
        let m = merge_pair(&a, &b).unwrap();
        assert!(covers(&m, &b));
    }

    #[test]
    fn empty_merge_is_none() {
        assert!(merge_queries(&[]).is_none());
    }

    #[test]
    fn unbounded_windows_impose_no_bound() {
        let q = parse_query("SELECT * FROM R [Unbounded], S [Unbounded] WHERE R.k = S.k").unwrap();
        assert!(window_bound_predicates(&q).is_empty());
    }

    /// `coverer_bounds` must over-approximate [`implies`]: whenever a
    /// specific comparison set implies a general comparison, the general
    /// threshold falls inside the bounds (brute-forced over an op ×
    /// constant grid).
    #[test]
    fn coverer_bounds_over_approximate_implies() {
        use crate::ast::{AttrRef, Scalar};
        let ops = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq];
        let consts = [-3i64, 0, 2, 5];
        let cmp = |op: CmpOp, c: i64| Predicate::Cmp {
            attr: AttrRef::new("R", "a"),
            op,
            value: Scalar::Int(c),
        };
        for &op1 in &ops {
            for &c1 in &consts {
                for &op2 in &ops {
                    for &c2 in &consts {
                        let bounds = coverer_bounds([(op1, c1 as f64)]);
                        if !implies(&cmp(op1, c1), &cmp(op2, c2)) {
                            continue;
                        }
                        let inside = match op2 {
                            CmpOp::Gt | CmpOp::Ge => {
                                bounds.lower_max.is_some_and(|m| c2 as f64 <= m)
                            }
                            CmpOp::Lt | CmpOp::Le => {
                                bounds.upper_min.is_some_and(|m| c2 as f64 >= m)
                            }
                            CmpOp::Eq => bounds.eq_values.contains(&(c2 as f64)),
                            CmpOp::Ne => true,
                        };
                        assert!(
                            inside,
                            "{op1:?} {c1} implies {op2:?} {c2} but bounds {bounds:?} exclude it"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn coverer_bounds_accumulate_and_ignore_nan() {
        let b = coverer_bounds([
            (CmpOp::Gt, 10.0),
            (CmpOp::Ge, 20.0),
            (CmpOp::Lt, 5.0),
            (CmpOp::Eq, 7.0),
            (CmpOp::Gt, f64::NAN),
            (CmpOp::Ne, 99.0),
        ]);
        assert_eq!(b.lower_max, Some(20.0), "strongest lower bound wins");
        assert_eq!(b.upper_min, Some(5.0), "strongest upper bound wins");
        assert_eq!(b.eq_values, vec![7.0]);
        assert_eq!(coverer_bounds([]), CoverBounds::default());
    }
}
