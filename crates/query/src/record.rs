//! The unified, `Arc`-shared record type of the data plane.
//!
//! # Why one type
//!
//! The engine's `Tuple` and the Pub/Sub `Message` evolved into byte-identical
//! schema-indexed records — `{stream, timestamp, Arc<Schema>, payload}` —
//! maintained in parallel in two crates. [`Record`] collapses them into one
//! definition here (where [`Scalar`] lives); `cosmos_engine::tuple::Tuple`
//! and `cosmos_pubsub::subscription::Message` are aliases of it, so a record
//! crossing the broker→engine boundary is *the same value*, not a re-keyed
//! copy.
//!
//! # Why `Arc<[Scalar]>`
//!
//! The payload is shared, not owned: `clone()` is a reference-count bump.
//! That makes every fan-out point zero-copy — a broker delivering one
//! message to hundreds of matched subscribers, a multi-hop relay forwarding
//! an unprojected record, a shared-execution engine splitting one result to
//! many member queries — where an owned `Vec<Scalar>` forced a deep copy
//! per consumer. Construction still pays one allocation
//! ([`Record::from_parts`]); everything downstream bumps a counter.
//!
//! [`Record::wire_size`] charges the *content* (per attribute: a 4-byte
//! symbol id plus the value's actual payload), never the sharing: a shared
//! and a deep-copied record of equal content cost the same bytes, so link
//! traffic accounting is unaffected by who holds the payload.

use crate::ast::{AttrRef, Scalar};
use crate::compiled::{ScalarRef, SymSource};
use crate::predicate::AttrSource;
use cosmos_util::intern::{Schema, Symbol};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Retained-schema cache key: input schema id + kept attribute set.
type RetainKey = (u32, Vec<Symbol>);

thread_local! {
    static RETAINED_SCHEMAS: RefCell<HashMap<RetainKey, Arc<Schema>>> =
        RefCell::new(HashMap::new());
}

/// The empty payload, shared process-wide so `Record::new` never allocates.
fn empty_payload() -> Arc<[Scalar]> {
    static EMPTY: OnceLock<Arc<[Scalar]>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Vec::new().into()))
}

/// A stream record: stream (or alias) tag, event timestamp, and a
/// positional scalar payload indexed by a shared, interned [`Schema`].
///
/// The payload is `Arc`-shared: cloning a record bumps two reference
/// counts (schema + payload) and copies no scalar. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// The stream this record belongs to.
    pub stream: Symbol,
    /// Event time in milliseconds.
    pub timestamp: i64,
    schema: Arc<Schema>,
    payload: Arc<[Scalar]>,
}

impl Record {
    /// Creates an empty record (compat shim; interns `stream`).
    pub fn new(stream: impl Into<Symbol>, timestamp: i64) -> Self {
        Self { stream: stream.into(), timestamp, schema: Schema::empty(), payload: empty_payload() }
    }

    /// Builds a record from an owned payload — the construction hot path
    /// (one allocation to move the values into the shared slice).
    ///
    /// # Panics
    ///
    /// Panics if `values` and `schema` disagree on arity.
    pub fn from_parts(
        stream: impl Into<Symbol>,
        timestamp: i64,
        schema: Arc<Schema>,
        values: Vec<Scalar>,
    ) -> Self {
        assert_eq!(schema.len(), values.len(), "schema/values arity mismatch");
        Self { stream: stream.into(), timestamp, schema, payload: values.into() }
    }

    /// Builds a record by filling a right-sized buffer — the emit-path
    /// constructor. (Measured against a reused thread-local scratch
    /// buffer drained into the `Arc`: the plain exact-capacity `Vec` plus
    /// `into()` wins, so that is what this does.)
    ///
    /// # Panics
    ///
    /// Panics if the filled buffer and `schema` disagree on arity.
    pub fn build(
        stream: impl Into<Symbol>,
        timestamp: i64,
        schema: Arc<Schema>,
        fill: impl FnOnce(&mut Vec<Scalar>),
    ) -> Self {
        let mut buf = Vec::with_capacity(schema.len());
        fill(&mut buf);
        assert_eq!(schema.len(), buf.len(), "schema/values arity mismatch");
        let payload: Arc<[Scalar]> = buf.into();
        Self { stream: stream.into(), timestamp, schema, payload }
    }

    /// Builds a record on an already-shared payload — the zero-copy
    /// constructor projection/fan-out paths use.
    ///
    /// # Panics
    ///
    /// Panics if `payload` and `schema` disagree on arity.
    pub fn from_shared(
        stream: impl Into<Symbol>,
        timestamp: i64,
        schema: Arc<Schema>,
        payload: Arc<[Scalar]>,
    ) -> Self {
        assert_eq!(schema.len(), payload.len(), "schema/payload arity mismatch");
        Self { stream: stream.into(), timestamp, schema, payload }
    }

    /// Adds an attribute (builder-style compat shim; re-interns the
    /// extended schema, so repeated shapes still share one schema).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already present — schemas are positional
    /// indices, so duplicate names are rejected at construction.
    pub fn with(self, name: impl Into<Symbol>, value: Scalar) -> Self {
        let schema = self.schema.with(name.into());
        Record::build(self.stream, self.timestamp, schema, |buf| {
            buf.extend(self.payload.iter().cloned());
            buf.push(value);
        })
    }

    /// The record's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The positional payload.
    pub fn values(&self) -> &[Scalar] {
        &self.payload
    }

    /// The shared payload handle (a clone is a refcount bump).
    pub fn shared_payload(&self) -> Arc<[Scalar]> {
        Arc::clone(&self.payload)
    }

    /// The same payload under a different schema — pure schema rewriting
    /// (e.g. alias renaming) shares the scalars untouched.
    ///
    /// # Panics
    ///
    /// Panics if `schema`'s arity differs from this record's.
    pub fn with_schema(&self, schema: Arc<Schema>) -> Record {
        assert_eq!(schema.len(), self.payload.len(), "schema/payload arity mismatch");
        Record {
            stream: self.stream,
            timestamp: self.timestamp,
            schema,
            payload: Arc::clone(&self.payload),
        }
    }

    /// Looks up an attribute value by symbol — the hot path.
    #[inline]
    pub fn get_sym(&self, attr: Symbol) -> Option<&Scalar> {
        self.schema.index_of(attr).map(|i| &self.payload[i])
    }

    /// Looks up an attribute value by name (compat shim; never interns).
    pub fn get(&self, name: &str) -> Option<&Scalar> {
        self.get_sym(Symbol::lookup(name)?)
    }

    /// Iterates `(attribute, value)` pairs in column order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Scalar)> {
        self.schema.attrs().iter().copied().zip(self.payload.iter())
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// `true` when the record has no attributes.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// The record restricted to the attributes in `keep` — the broker's
    /// early-projection step. The projected schema is a pure function of
    /// (input schema, keep set) and cached per thread, so repeat shapes
    /// skip the schema interner; per call this copies kept scalars only.
    pub fn retaining(&self, keep: &BTreeSet<Symbol>) -> Record {
        let key: RetainKey = (self.schema.id(), keep.iter().copied().collect());
        let schema = RETAINED_SCHEMAS.with_borrow_mut(|cache| {
            if cache.len() > 4096 {
                cache.clear();
            }
            Arc::clone(cache.entry(key).or_insert_with(|| {
                let attrs: Vec<Symbol> =
                    self.schema.attrs().iter().copied().filter(|a| keep.contains(a)).collect();
                Schema::intern(&attrs)
            }))
        });
        Record::build(self.stream, self.timestamp, schema, |buf| {
            for (a, v) in self.iter() {
                if keep.contains(&a) {
                    buf.push(v.clone());
                }
            }
        })
    }

    /// Approximate wire size in bytes: a 16-byte header (stream tag +
    /// timestamp), then per attribute a 4-byte symbol id plus the value's
    /// actual payload — 8 bytes for numbers, length plus a 4-byte length
    /// prefix for strings. Sharing is invisible here: the engine and the
    /// broker charge the same bytes for the same content, whether the
    /// payload is `Arc`-shared or not.
    pub fn wire_size(&self) -> usize {
        16 + self.payload.iter().map(|v| 4 + v.wire_size()).sum::<usize>()
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}{{", self.stream, self.timestamp)?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

impl SymSource for Record {
    #[inline]
    fn value(&self, rel: Symbol, attr: Symbol) -> Option<ScalarRef<'_>> {
        if rel != self.stream {
            return None;
        }
        self.get_sym(attr).map(Into::into)
    }

    #[inline]
    fn timestamp(&self, rel: Symbol) -> Option<i64> {
        (rel == self.stream).then_some(self.timestamp)
    }
}

impl AttrSource for Record {
    fn value(&self, attr: &AttrRef) -> Option<Scalar> {
        if self.stream != attr.relation.as_str() {
            return None;
        }
        // The `timestamp` pseudo-attribute resolves to the header, exactly
        // as the compiled evaluator does — string-based and compiled filter
        // evaluation agree on records.
        if attr.attr == "timestamp" {
            return Some(Scalar::Int(self.timestamp));
        }
        self.get(&attr.attr).cloned()
    }

    fn timestamp(&self, alias: &str) -> Option<i64> {
        (self.stream == alias).then_some(self.timestamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_payload() {
        let r = Record::new("R", 5).with("a", Scalar::Int(1)).with("b", Scalar::Str("xy".into()));
        let c = r.clone();
        assert_eq!(r, c);
        assert!(Arc::ptr_eq(&r.payload, &c.payload), "clone must share, not copy");
        assert!(Arc::ptr_eq(r.schema(), c.schema()));
    }

    #[test]
    fn with_schema_shares_payload() {
        let r = Record::new("R", 0).with("a", Scalar::Int(1));
        let renamed = r.with_schema(Schema::intern(&[Symbol::intern("z")]));
        assert!(Arc::ptr_eq(&r.payload, &renamed.payload));
        assert_eq!(renamed.get("z"), Some(&Scalar::Int(1)));
        assert_eq!(renamed.wire_size(), r.wire_size());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn with_schema_rejects_arity_mismatch() {
        let r = Record::new("R", 0).with("a", Scalar::Int(1));
        let _ = r.with_schema(Schema::empty());
    }

    #[test]
    fn retaining_projects_and_recomputes_size() {
        let keep: BTreeSet<Symbol> = [Symbol::intern("a")].into();
        let r = Record::new("R", 9).with("a", Scalar::Int(1)).with("b", Scalar::Int(2));
        let p = r.retaining(&keep);
        assert_eq!(p.len(), 1);
        assert_eq!(p.get("a"), Some(&Scalar::Int(1)));
        assert_eq!(p.timestamp, 9);
        assert!(p.wire_size() < r.wire_size());
    }

    #[test]
    fn empty_records_share_one_payload() {
        let a = Record::new("R", 0);
        let b = Record::new("S", 1);
        assert!(Arc::ptr_eq(&a.payload, &b.payload));
    }
}
