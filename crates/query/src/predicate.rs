//! Predicate evaluation and implication.
//!
//! Implication powers two paper mechanisms:
//!
//! 1. **Subscription covering** in the Pub/Sub: a node only propagates a
//!    subscription to its neighbor if no already-forwarded subscription
//!    covers it (Siena semantics, §1.2).
//! 2. **Query containment** for result-stream sharing (§2.1): query `Q`
//!    covers `Q'` only when `Q`'s filters are implied by `Q'`'s.

use crate::ast::{AttrRef, CmpOp, Predicate, Scalar};

/// Source of attribute values for predicate evaluation: a (joined) tuple.
pub trait AttrSource {
    /// The value bound to `attr`, or `None` when absent.
    fn value(&self, attr: &AttrRef) -> Option<Scalar>;

    /// The timestamp (ms) of the tuple from relation `alias`, or `None`.
    fn timestamp(&self, alias: &str) -> Option<i64>;
}

/// Compares two scalars under `op`; `None` when the types are incomparable.
pub fn compare(op: CmpOp, l: &Scalar, r: &Scalar) -> Option<bool> {
    match (l, r) {
        (Scalar::Str(a), Scalar::Str(b)) => match op {
            CmpOp::Eq => Some(a == b),
            CmpOp::Ne => Some(a != b),
            CmpOp::Lt => Some(a < b),
            CmpOp::Le => Some(a <= b),
            CmpOp::Gt => Some(a > b),
            CmpOp::Ge => Some(a >= b),
        },
        _ => {
            let (a, b) = (l.as_f64()?, r.as_f64()?);
            Some(op.eval_f64(a, b))
        }
    }
}

/// Evaluates one predicate against a tuple.
///
/// Returns `None` if a referenced attribute/timestamp is missing or the
/// comparison is type-incoherent — callers treat that as "does not satisfy".
pub fn eval_predicate<S: AttrSource>(p: &Predicate, src: &S) -> Option<bool> {
    match p {
        Predicate::Cmp { attr, op, value } => compare(*op, &src.value(attr)?, value),
        Predicate::JoinCmp { left, op, right } => {
            compare(*op, &src.value(left)?, &src.value(right)?)
        }
        Predicate::TimeDelta { left, right, min_ms, max_ms } => {
            let delta = src.timestamp(left)? - src.timestamp(right)?;
            Some(*min_ms <= delta && delta <= *max_ms)
        }
    }
}

/// Evaluates a conjunction; missing values make the conjunction false.
pub fn eval_conjunction<S: AttrSource>(preds: &[Predicate], src: &S) -> bool {
    preds.iter().all(|p| eval_predicate(p, src).unwrap_or(false))
}

/// Returns `true` if predicate `p` logically implies predicate `q`
/// (every tuple satisfying `p` satisfies `q`).
///
/// Sound but not complete: it reasons about pairs of comparison predicates
/// over the *same attribute* (numeric or string) and syntactic equality for
/// join / time-delta predicates (including the flipped form of a join
/// comparison). `false` answers may be spurious; `true` answers are always
/// correct — exactly the property covering/containment needs.
pub fn implies(p: &Predicate, q: &Predicate) -> bool {
    if p == q {
        return true;
    }
    match (p, q) {
        (
            Predicate::Cmp { attr: ap, op: op1, value: c1 },
            Predicate::Cmp { attr: aq, op: op2, value: c2 },
        ) if ap == aq => implies_cmp(*op1, c1, *op2, c2),
        (
            Predicate::JoinCmp { left: l1, op: o1, right: r1 },
            Predicate::JoinCmp { left: l2, op: o2, right: r2 },
        ) => l1 == r2 && r1 == l2 && o1.flipped() == *o2,
        (
            Predicate::TimeDelta { left: l1, right: r1, min_ms: lo1, max_ms: hi1 },
            Predicate::TimeDelta { left: l2, right: r2, min_ms: lo2, max_ms: hi2 },
        ) => {
            (l1 == l2 && r1 == r2 && lo2 <= lo1 && hi1 <= hi2)
                || (l1 == r2 && r1 == l2 && *lo2 <= -hi1 && -lo1 <= *hi2)
        }
        _ => false,
    }
}

fn implies_cmp(op1: CmpOp, c1: &Scalar, op2: CmpOp, c2: &Scalar) -> bool {
    // String comparisons: only handle the equality fragment.
    if let (Scalar::Str(s1), Scalar::Str(s2)) = (c1, c2) {
        return match (op1, op2) {
            (CmpOp::Eq, CmpOp::Eq) => s1 == s2,
            (CmpOp::Eq, CmpOp::Ne) => s1 != s2,
            (CmpOp::Ne, CmpOp::Ne) => s1 == s2,
            _ => false,
        };
    }
    let (Some(a), Some(b)) = (c1.as_f64(), c2.as_f64()) else {
        return false;
    };
    threshold_implies(op1, a, op2, b)
}

/// Numeric threshold-level implication: does `attr op_s t_s` imply
/// `attr op_g t_g` for the *same* attribute? This is the skeleton of
/// [`implies`] on the numeric comparison fragment — the form covering
/// indexes prune candidates with, where predicates have already been
/// reduced to `(attribute, operator, threshold)` triples (see
/// `IndexableCmp`). Agrees with [`implies`] on every numeric
/// `Cmp`/`Cmp` pair by construction (it *is* that code path).
pub fn threshold_implies(op_s: CmpOp, t_s: f64, op_g: CmpOp, t_g: f64) -> bool {
    use CmpOp::*;
    match (op_s, op_g) {
        // Lower-bound family.
        (Gt, Gt) => t_s >= t_g,
        (Gt, Ge) => t_s >= t_g,
        (Ge, Ge) => t_s >= t_g,
        (Ge, Gt) => t_s > t_g,
        // Upper-bound family.
        (Lt, Lt) => t_s <= t_g,
        (Lt, Le) => t_s <= t_g,
        (Le, Le) => t_s <= t_g,
        (Le, Lt) => t_s < t_g,
        // Point constraints.
        (Eq, _) => op_g.eval_f64(t_s, t_g),
        // x ≠ t_g follows from any constraint excluding t_g.
        (Gt, Ne) => t_s >= t_g,
        (Ge, Ne) => t_s > t_g,
        (Lt, Ne) => t_s <= t_g,
        (Le, Ne) => t_s < t_g,
        (Ne, Ne) => t_s == t_g,
        _ => false,
    }
}

/// The weakest predicate in our language implied by **both** `p` and `q`
/// (`p ⇒ r` and `q ⇒ r`), used when merging queries: the merged filter must
/// pass every tuple either input query passes.
///
/// Because comparison predicates over one attribute form chains under
/// implication, the weakest common consequence — when one exists at all — is
/// simply whichever of the two predicates is implied by the other. Returns
/// `None` when neither implies the other (e.g. `a > 10` vs `a < 5`), in
/// which case the caller must drop the constraint entirely.
pub fn weakest_common(p: &Predicate, q: &Predicate) -> Option<Predicate> {
    if implies(p, q) {
        Some(q.clone())
    } else if implies(q, p) {
        Some(p.clone())
    } else {
        None
    }
}

/// Estimates the selectivity of a numeric comparison given a value range —
/// used by the workload/statistics layer to size result rates.
///
/// Assumes values uniform over `[lo, hi]`. Clamped to `[0, 1]`.
pub fn selectivity_uniform(op: CmpOp, c: f64, lo: f64, hi: f64) -> f64 {
    if hi <= lo {
        return 1.0;
    }
    let frac_below = ((c - lo) / (hi - lo)).clamp(0.0, 1.0);
    match op {
        CmpOp::Lt | CmpOp::Le => frac_below,
        CmpOp::Gt | CmpOp::Ge => 1.0 - frac_below,
        CmpOp::Eq => 0.05_f64.min(1.0 / (hi - lo)),
        CmpOp::Ne => 1.0 - 0.05_f64.min(1.0 / (hi - lo)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    struct MapSource {
        values: HashMap<(String, String), Scalar>,
        times: HashMap<String, i64>,
    }

    impl MapSource {
        fn new() -> Self {
            Self { values: HashMap::new(), times: HashMap::new() }
        }
        fn with(mut self, rel: &str, attr: &str, v: Scalar) -> Self {
            self.values.insert((rel.into(), attr.into()), v);
            self
        }
        fn at(mut self, rel: &str, ts: i64) -> Self {
            self.times.insert(rel.into(), ts);
            self
        }
    }

    impl AttrSource for MapSource {
        fn value(&self, attr: &AttrRef) -> Option<Scalar> {
            self.values.get(&(attr.relation.clone(), attr.attr.clone())).cloned()
        }
        fn timestamp(&self, alias: &str) -> Option<i64> {
            self.times.get(alias).copied()
        }
    }

    fn cmp(attr: &str, op: CmpOp, v: i64) -> Predicate {
        Predicate::Cmp { attr: AttrRef::new("R", attr), op, value: Scalar::Int(v) }
    }

    #[test]
    fn eval_selection() {
        let src = MapSource::new().with("R", "a", Scalar::Int(15));
        assert_eq!(eval_predicate(&cmp("a", CmpOp::Gt, 10), &src), Some(true));
        assert_eq!(eval_predicate(&cmp("a", CmpOp::Gt, 20), &src), Some(false));
        assert_eq!(eval_predicate(&cmp("b", CmpOp::Gt, 0), &src), None);
    }

    #[test]
    fn eval_join_and_timedelta() {
        let src = MapSource::new()
            .with("R", "b", Scalar::Int(3))
            .with("S", "b", Scalar::Int(3))
            .at("R", 1_000)
            .at("S", 1_500);
        let join = Predicate::JoinCmp {
            left: AttrRef::new("R", "b"),
            op: CmpOp::Eq,
            right: AttrRef::new("S", "b"),
        };
        assert_eq!(eval_predicate(&join, &src), Some(true));
        let td =
            Predicate::TimeDelta { left: "R".into(), right: "S".into(), min_ms: -1_000, max_ms: 0 };
        assert_eq!(eval_predicate(&td, &src), Some(true));
        let tight =
            Predicate::TimeDelta { left: "R".into(), right: "S".into(), min_ms: -100, max_ms: 0 };
        assert_eq!(eval_predicate(&tight, &src), Some(false));
    }

    #[test]
    fn eval_conjunction_with_missing_attr_is_false() {
        let src = MapSource::new().with("R", "a", Scalar::Int(15));
        assert!(eval_conjunction(&[cmp("a", CmpOp::Gt, 10)], &src));
        assert!(!eval_conjunction(&[cmp("a", CmpOp::Gt, 10), cmp("zzz", CmpOp::Lt, 0)], &src));
    }

    #[test]
    fn implication_lower_bounds() {
        assert!(implies(&cmp("a", CmpOp::Gt, 20), &cmp("a", CmpOp::Gt, 10)));
        assert!(implies(&cmp("a", CmpOp::Gt, 10), &cmp("a", CmpOp::Ge, 10)));
        assert!(implies(&cmp("a", CmpOp::Ge, 11), &cmp("a", CmpOp::Gt, 10)));
        assert!(!implies(&cmp("a", CmpOp::Ge, 10), &cmp("a", CmpOp::Gt, 10)));
        assert!(!implies(&cmp("a", CmpOp::Gt, 10), &cmp("a", CmpOp::Gt, 20)));
    }

    #[test]
    fn implication_upper_bounds_and_eq() {
        assert!(implies(&cmp("a", CmpOp::Lt, 5), &cmp("a", CmpOp::Lt, 10)));
        assert!(implies(&cmp("a", CmpOp::Le, 5), &cmp("a", CmpOp::Lt, 6)));
        assert!(implies(&cmp("a", CmpOp::Eq, 7), &cmp("a", CmpOp::Gt, 5)));
        assert!(implies(&cmp("a", CmpOp::Eq, 7), &cmp("a", CmpOp::Ne, 8)));
        assert!(!implies(&cmp("a", CmpOp::Eq, 7), &cmp("a", CmpOp::Gt, 7)));
        assert!(implies(&cmp("a", CmpOp::Gt, 8), &cmp("a", CmpOp::Ne, 8)));
        assert!(!implies(&cmp("a", CmpOp::Ne, 8), &cmp("a", CmpOp::Gt, 7)));
    }

    #[test]
    fn implication_different_attrs_is_false() {
        assert!(!implies(&cmp("a", CmpOp::Gt, 10), &cmp("b", CmpOp::Gt, 5)));
    }

    #[test]
    fn join_implication_handles_flip() {
        let p = Predicate::JoinCmp {
            left: AttrRef::new("R", "b"),
            op: CmpOp::Lt,
            right: AttrRef::new("S", "b"),
        };
        let q = Predicate::JoinCmp {
            left: AttrRef::new("S", "b"),
            op: CmpOp::Gt,
            right: AttrRef::new("R", "b"),
        };
        assert!(implies(&p, &q));
        assert!(implies(&q, &p));
    }

    #[test]
    fn timedelta_implication_widening() {
        let narrow =
            Predicate::TimeDelta { left: "A".into(), right: "B".into(), min_ms: -100, max_ms: 0 };
        let wide =
            Predicate::TimeDelta { left: "A".into(), right: "B".into(), min_ms: -500, max_ms: 10 };
        assert!(implies(&narrow, &wide));
        assert!(!implies(&wide, &narrow));
        // Flipped orientation: −Δ bounds swap and negate.
        let flipped =
            Predicate::TimeDelta { left: "B".into(), right: "A".into(), min_ms: 0, max_ms: 100 };
        assert!(implies(&narrow, &flipped));
        assert!(implies(&flipped, &narrow));
    }

    #[test]
    fn string_implication() {
        let eq_a = Predicate::Cmp {
            attr: AttrRef::new("R", "s"),
            op: CmpOp::Eq,
            value: Scalar::Str("a".into()),
        };
        let ne_b = Predicate::Cmp {
            attr: AttrRef::new("R", "s"),
            op: CmpOp::Ne,
            value: Scalar::Str("b".into()),
        };
        assert!(implies(&eq_a, &ne_b));
        assert!(!implies(&ne_b, &eq_a));
    }

    /// `threshold_implies` is the numeric fragment of `implies` — the two
    /// must agree on every float comparison pair, including NaN (which
    /// implies and is implied by nothing).
    #[test]
    fn threshold_implies_agrees_with_implies() {
        let ops = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne];
        let consts = [-2.5f64, 0.0, -0.0, 1.0, 3.5, f64::NAN];
        let fcmp = |op: CmpOp, c: f64| Predicate::Cmp {
            attr: AttrRef::new("R", "a"),
            op,
            value: Scalar::Float(c),
        };
        for &op1 in &ops {
            for &c1 in &consts {
                for &op2 in &ops {
                    for &c2 in &consts {
                        assert_eq!(
                            threshold_implies(op1, c1, op2, c2),
                            implies(&fcmp(op1, c1), &fcmp(op2, c2)),
                            "diverged on {op1:?} {c1} vs {op2:?} {c2}"
                        );
                    }
                }
            }
        }
        assert!(!threshold_implies(CmpOp::Gt, f64::NAN, CmpOp::Gt, 0.0));
        assert!(!threshold_implies(CmpOp::Gt, 0.0, CmpOp::Gt, f64::NAN));
    }

    #[test]
    fn weakest_common_picks_the_weaker() {
        let p = cmp("a", CmpOp::Gt, 20);
        let q = cmp("a", CmpOp::Gt, 10);
        assert_eq!(weakest_common(&p, &q), Some(q.clone()));
        assert_eq!(weakest_common(&q, &p), Some(q.clone()));
        assert_eq!(weakest_common(&p, &cmp("a", CmpOp::Lt, 5)), None);
        assert_eq!(weakest_common(&cmp("b", CmpOp::Gt, 1), &p), None);
    }

    #[test]
    fn selectivity_estimates() {
        assert!((selectivity_uniform(CmpOp::Gt, 5.0, 0.0, 10.0) - 0.5).abs() < 1e-9);
        assert!((selectivity_uniform(CmpOp::Lt, 2.5, 0.0, 10.0) - 0.25).abs() < 1e-9);
        assert_eq!(selectivity_uniform(CmpOp::Gt, -5.0, 0.0, 10.0), 1.0);
        assert_eq!(selectivity_uniform(CmpOp::Lt, -5.0, 0.0, 10.0), 0.0);
    }

    /// Exhaustive soundness check of `implies` for integer comparisons by
    /// brute-force evaluation over a sample domain.
    #[test]
    fn implies_is_sound_on_numeric_domain() {
        let ops = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne];
        let consts = [-2i64, 0, 1, 3];
        let domain = -5..=5i64;
        for &op1 in &ops {
            for &c1 in &consts {
                for &op2 in &ops {
                    for &c2 in &consts {
                        let p = cmp("a", op1, c1);
                        let q = cmp("a", op2, c2);
                        if implies(&p, &q) {
                            for x in domain.clone() {
                                let src = MapSource::new().with("R", "a", Scalar::Int(x));
                                let sat_p = eval_predicate(&p, &src).unwrap();
                                let sat_q = eval_predicate(&q, &src).unwrap();
                                assert!(
                                    !sat_p || sat_q,
                                    "claimed {p} => {q} but x = {x} violates it"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    proptest! {
        /// `weakest_common` must be implied by both inputs whenever defined.
        #[test]
        fn prop_weakest_common_is_implied_by_both(
            op1 in 0usize..6, c1 in -20i64..20,
            op2 in 0usize..6, c2 in -20i64..20,
        ) {
            let ops = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne];
            let p = cmp("a", ops[op1], c1);
            let q = cmp("a", ops[op2], c2);
            if let Some(r) = weakest_common(&p, &q) {
                prop_assert!(implies(&p, &r), "{p} should imply {r}");
                prop_assert!(implies(&q, &r), "{q} should imply {r}");
            }
        }

        /// Implication must be transitive on the fragment it accepts.
        #[test]
        fn prop_implies_transitive(
            op in proptest::sample::select(vec![CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge]),
            c1 in -20i64..20, c2 in -20i64..20, c3 in -20i64..20,
        ) {
            let p = cmp("a", op, c1);
            let q = cmp("a", op, c2);
            let r = cmp("a", op, c3);
            if implies(&p, &q) && implies(&q, &r) {
                prop_assert!(implies(&p, &r));
            }
        }
    }
}
