//! Abstract syntax for the CQL subset.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique identifier for a submitted continuous query.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct QueryId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// A scalar constant in a predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Scalar {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String literal.
    Str(String),
}

impl Scalar {
    /// Numeric view of the scalar, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::Int(i) => Some(*i as f64),
            Scalar::Float(f) => Some(*f),
            Scalar::Str(_) => None,
        }
    }

    /// Approximate wire bytes of the value payload: 8 for numbers, the
    /// string length plus a 4-byte length prefix for strings. Shared by
    /// the engine tuple and Pub/Sub message size models.
    pub fn wire_size(&self) -> usize {
        match self {
            Scalar::Int(_) | Scalar::Float(_) => 8,
            Scalar::Str(s) => 4 + s.len(),
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Int(i) => write!(f, "{i}"),
            Scalar::Float(x) => write!(f, "{x}"),
            Scalar::Str(s) => write!(f, "'{s}'"),
        }
    }
}

/// A qualified attribute reference `alias.attr`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrRef {
    /// The relation alias from the `FROM` clause (e.g. `S1`).
    pub relation: String,
    /// The attribute name (e.g. `snowHeight`).
    pub attr: String,
}

impl AttrRef {
    /// Convenience constructor.
    pub fn new(relation: impl Into<String>, attr: impl Into<String>) -> Self {
        Self { relation: relation.into(), attr: attr.into() }
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.relation, self.attr)
    }
}

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Applies the operator to an ordered pair.
    pub fn eval_f64(self, l: f64, r: f64) -> bool {
        match self {
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
        }
    }

    /// The operator with flipped operand order (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// A conjunct of the `WHERE` clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Selection: `attr op constant`.
    Cmp {
        /// Attribute on the left.
        attr: AttrRef,
        /// Comparison operator.
        op: CmpOp,
        /// Constant on the right.
        value: Scalar,
    },
    /// Join: `left op right` over two relations' attributes.
    JoinCmp {
        /// Attribute of the left relation.
        left: AttrRef,
        /// Comparison operator.
        op: CmpOp,
        /// Attribute of the right relation.
        right: AttrRef,
    },
    /// Window containment over timestamps:
    /// `min_ms <= ts(left) − ts(right) <= max_ms`.
    ///
    /// Used as the *residual* filter when splitting a shared result stream
    /// (§2.1: `−30(minute) ≤ S1.timestamp − S2.timestamp ≤ 0`).
    TimeDelta {
        /// Alias whose timestamp is the minuend.
        left: String,
        /// Alias whose timestamp is the subtrahend.
        right: String,
        /// Lower bound in milliseconds (inclusive).
        min_ms: i64,
        /// Upper bound in milliseconds (inclusive).
        max_ms: i64,
    },
}

impl Predicate {
    /// Returns `true` for a single-relation selection predicate.
    pub fn is_selection(&self) -> bool {
        matches!(self, Predicate::Cmp { .. })
    }

    /// Returns `true` for a join predicate.
    pub fn is_join(&self) -> bool {
        matches!(self, Predicate::JoinCmp { .. })
    }

    /// Aliases this predicate mentions.
    pub fn relations(&self) -> Vec<&str> {
        match self {
            Predicate::Cmp { attr, .. } => vec![attr.relation.as_str()],
            Predicate::JoinCmp { left, right, .. } => {
                vec![left.relation.as_str(), right.relation.as_str()]
            }
            Predicate::TimeDelta { left, right, .. } => vec![left.as_str(), right.as_str()],
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Cmp { attr, op, value } => write!(f, "{attr} {op} {value}"),
            Predicate::JoinCmp { left, op, right } => write!(f, "{left} {op} {right}"),
            Predicate::TimeDelta { left, right, min_ms, max_ms } => {
                write!(f, "{min_ms} <= {left}.timestamp - {right}.timestamp <= {max_ms}")
            }
        }
    }
}

/// A window specification on a `FROM` relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Window {
    /// `[Now]`: only the latest instant (width 0).
    Now,
    /// `[Range n unit]`: a sliding window of the given width in
    /// milliseconds.
    Range(u64),
    /// `[Unbounded]`: the entire history.
    Unbounded,
}

impl Window {
    /// Window width in milliseconds; `None` means unbounded.
    pub fn width_ms(&self) -> Option<u64> {
        match self {
            Window::Now => Some(0),
            Window::Range(ms) => Some(*ms),
            Window::Unbounded => None,
        }
    }

    /// Returns `true` if `self` contains every tuple `other` contains
    /// (window containment: wider or equal).
    pub fn contains(&self, other: &Window) -> bool {
        match (self.width_ms(), other.width_ms()) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => a >= b,
        }
    }

    /// The smallest window containing both.
    pub fn union(&self, other: &Window) -> Window {
        match (self.width_ms(), other.width_ms()) {
            (None, _) | (_, None) => Window::Unbounded,
            (Some(a), Some(b)) => {
                let w = a.max(b);
                if w == 0 {
                    Window::Now
                } else {
                    Window::Range(w)
                }
            }
        }
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Window::Now => f.write_str("[Now]"),
            Window::Range(ms) => {
                if ms % 3_600_000 == 0 && *ms > 0 {
                    write!(f, "[Range {} Hours]", ms / 3_600_000)
                } else if ms % 60_000 == 0 && *ms > 0 {
                    write!(f, "[Range {} Minutes]", ms / 60_000)
                } else if ms % 1000 == 0 && *ms > 0 {
                    write!(f, "[Range {} Seconds]", ms / 1000)
                } else {
                    write!(f, "[Range {ms} Milliseconds]")
                }
            }
            Window::Unbounded => f.write_str("[Unbounded]"),
        }
    }
}

/// One relation in the `FROM` clause: stream name, window, alias.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationRef {
    /// Source stream name (e.g. `Station1`).
    pub stream: String,
    /// Window specification.
    pub window: Window,
    /// Alias used to qualify attributes; defaults to the stream name.
    pub alias: String,
}

impl fmt::Display for RelationRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.alias == self.stream {
            write!(f, "{} {}", self.stream, self.window)
        } else {
            write!(f, "{} {} {}", self.stream, self.window, self.alias)
        }
    }
}

/// A windowed aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AggFunc {
    /// Number of tuples in the window.
    Count,
    /// Sum of a numeric attribute over the window.
    Sum,
    /// Arithmetic mean over the window.
    Avg,
    /// Minimum over the window.
    Min,
    /// Maximum over the window.
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// One item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProjItem {
    /// `*` — all attributes of all relations.
    All,
    /// `alias.*` — all attributes of one relation.
    AllOf(String),
    /// A single qualified attribute.
    Attr(AttrRef),
    /// A windowed aggregate, e.g. `AVG(S1.snowHeight)`.
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// The aggregated attribute.
        attr: AttrRef,
    },
}

impl fmt::Display for ProjItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjItem::All => f.write_str("*"),
            ProjItem::AllOf(alias) => write!(f, "{alias}.*"),
            ProjItem::Attr(a) => write!(f, "{a}"),
            ProjItem::Agg { func, attr } => write!(f, "{func}({attr})"),
        }
    }
}

/// A parsed continuous query (conjunctive select-project-join over windowed
/// streams).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Projection list, in source order.
    pub projection: Vec<ProjItem>,
    /// `FROM` relations, in source order.
    pub relations: Vec<RelationRef>,
    /// Conjunctive `WHERE` predicates.
    pub predicates: Vec<Predicate>,
}

impl Query {
    /// The relation with the given alias, if any.
    pub fn relation(&self, alias: &str) -> Option<&RelationRef> {
        self.relations.iter().find(|r| r.alias == alias)
    }

    /// Stream names this query reads, in `FROM` order.
    pub fn streams(&self) -> impl Iterator<Item = &str> {
        self.relations.iter().map(|r| r.stream.as_str())
    }

    /// Selection (single-relation) predicates.
    pub fn selection_predicates(&self) -> impl Iterator<Item = &Predicate> {
        self.predicates.iter().filter(|p| p.is_selection())
    }

    /// Join predicates.
    pub fn join_predicates(&self) -> impl Iterator<Item = &Predicate> {
        self.predicates.iter().filter(|p| p.is_join())
    }

    /// Selection predicates restricted to one alias — these are what the
    /// Pub/Sub pushes toward the source for early filtering.
    pub fn selection_predicates_for(&self, alias: &str) -> Vec<&Predicate> {
        self.selection_predicates().filter(|p| p.relations() == vec![alias]).collect()
    }

    /// Projection items mentioning `alias` (plus `*`).
    pub fn projection_for(&self, alias: &str) -> Vec<&ProjItem> {
        self.projection
            .iter()
            .filter(|p| match p {
                ProjItem::All => true,
                ProjItem::AllOf(a) => a == alias,
                ProjItem::Attr(ar) => ar.relation == alias,
                ProjItem::Agg { attr, .. } => attr.relation == alias,
            })
            .collect()
    }

    /// Returns `true` when the `SELECT` list contains aggregate functions.
    pub fn has_aggregates(&self) -> bool {
        self.projection.iter().any(|p| matches!(p, ProjItem::Agg { .. }))
    }

    /// Returns `true` if every predicate and projection item refers to an
    /// alias declared in `FROM`, and aliases are unique.
    pub fn is_well_formed(&self) -> bool {
        let mut aliases: Vec<&str> = self.relations.iter().map(|r| r.alias.as_str()).collect();
        let total = aliases.len();
        aliases.sort_unstable();
        aliases.dedup();
        if aliases.len() != total {
            return false;
        }
        let known = |a: &str| aliases.binary_search(&a).is_ok();
        let preds_ok = self.predicates.iter().all(|p| p.relations().iter().all(|r| known(r)));
        let proj_ok = self.projection.iter().all(|p| match p {
            ProjItem::All => true,
            ProjItem::AllOf(a) => known(a),
            ProjItem::Attr(ar) => known(&ar.relation),
            ProjItem::Agg { attr, .. } => known(&attr.relation),
        });
        preds_ok && proj_ok && !self.projection.is_empty() && !self.relations.is_empty()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, p) in self.projection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, " FROM ")?;
        for (i, r) in self.relations.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        if !self.predicates.is_empty() {
            write!(f, " WHERE ")?;
            for (i, p) in self.predicates.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{p}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> Query {
        Query {
            projection: vec![ProjItem::AllOf("S2".into())],
            relations: vec![
                RelationRef {
                    stream: "Station1".into(),
                    window: Window::Range(30 * 60_000),
                    alias: "S1".into(),
                },
                RelationRef { stream: "Station2".into(), window: Window::Now, alias: "S2".into() },
            ],
            predicates: vec![
                Predicate::JoinCmp {
                    left: AttrRef::new("S1", "snowHeight"),
                    op: CmpOp::Gt,
                    right: AttrRef::new("S2", "snowHeight"),
                },
                Predicate::Cmp {
                    attr: AttrRef::new("S1", "snowHeight"),
                    op: CmpOp::Ge,
                    value: Scalar::Int(10),
                },
            ],
        }
    }

    #[test]
    fn well_formedness() {
        let q = sample_query();
        assert!(q.is_well_formed());
        let mut bad = q.clone();
        bad.predicates.push(Predicate::Cmp {
            attr: AttrRef::new("S9", "x"),
            op: CmpOp::Lt,
            value: Scalar::Int(1),
        });
        assert!(!bad.is_well_formed());
        let mut dup = q.clone();
        dup.relations.push(dup.relations[0].clone());
        assert!(!dup.is_well_formed());
    }

    #[test]
    fn selection_vs_join_split() {
        let q = sample_query();
        assert_eq!(q.selection_predicates().count(), 1);
        assert_eq!(q.join_predicates().count(), 1);
        assert_eq!(q.selection_predicates_for("S1").len(), 1);
        assert_eq!(q.selection_predicates_for("S2").len(), 0);
    }

    #[test]
    fn window_containment_laws() {
        assert!(Window::Unbounded.contains(&Window::Range(100)));
        assert!(Window::Range(100).contains(&Window::Range(100)));
        assert!(Window::Range(200).contains(&Window::Now));
        assert!(!Window::Now.contains(&Window::Range(1)));
        assert!(!Window::Range(100).contains(&Window::Unbounded));
        assert_eq!(Window::Range(100).union(&Window::Range(50)), Window::Range(100));
        assert_eq!(Window::Now.union(&Window::Now), Window::Now);
        assert_eq!(Window::Now.union(&Window::Unbounded), Window::Unbounded);
    }

    #[test]
    fn display_round_trips_sensibly() {
        let q = sample_query();
        let text = q.to_string();
        assert!(text.contains("SELECT S2.*"));
        assert!(text.contains("[Range 30 Minutes]"));
        assert!(text.contains("[Now]"));
        assert!(text.contains("S1.snowHeight >= 10"));
    }

    #[test]
    fn cmpop_flip_is_involutive_on_order_ops() {
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne] {
            assert_eq!(op.flipped().flipped(), op);
            // a op b == b op.flipped() a
            assert_eq!(op.eval_f64(1.0, 2.0), op.flipped().eval_f64(2.0, 1.0));
        }
    }

    #[test]
    fn scalar_numeric_view() {
        assert_eq!(Scalar::Int(3).as_f64(), Some(3.0));
        assert_eq!(Scalar::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Scalar::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn projection_for_alias() {
        let q = Query {
            projection: vec![
                ProjItem::Attr(AttrRef::new("A", "x")),
                ProjItem::AllOf("B".into()),
                ProjItem::All,
            ],
            relations: vec![
                RelationRef { stream: "A".into(), window: Window::Now, alias: "A".into() },
                RelationRef { stream: "B".into(), window: Window::Now, alias: "B".into() },
            ],
            predicates: vec![],
        };
        assert_eq!(q.projection_for("A").len(), 2); // A.x and *
        assert_eq!(q.projection_for("B").len(), 2); // B.* and *
    }
}
