//! Recursive-descent parser for the CQL subset.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query      := SELECT projlist FROM fromlist [ WHERE conjunction ]
//! projlist   := projitem (',' projitem)*
//! projitem   := '*' | ident '.' '*' | ident '.' ident
//! fromlist   := relation (',' relation)*
//! relation   := ident window [ ident ]
//! window     := '[' NOW ']' | '[' UNBOUNDED ']'
//!             | '[' RANGE number unit ']'
//! unit       := MILLISECOND(S) | SECOND(S) | MINUTE(S) | HOUR(S) | DAY(S)
//! conjunction:= comparison (AND comparison)*
//! comparison := operand op operand
//! operand    := ident '.' ident | number | string
//! op         := '<' | '<=' | '>' | '>=' | '=' | '!=' | '<>'
//! ```

use crate::ast::{AttrRef, CmpOp, Predicate, ProjItem, Query, RelationRef, Scalar, Window};
use std::fmt;

/// Error produced when parsing fails, with a byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(String),
    Str(String),
    Symbol(&'static str),
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: message.into() }
    }

    fn tokenize(mut self) -> Result<Vec<(usize, Tok)>, ParseError> {
        let bytes = self.src.as_bytes();
        let mut out = Vec::new();
        while self.pos < bytes.len() {
            let c = bytes[self.pos] as char;
            if c.is_whitespace() {
                self.pos += 1;
                continue;
            }
            let start = self.pos;
            match c {
                'a'..='z' | 'A'..='Z' | '_' => {
                    while self.pos < bytes.len()
                        && (bytes[self.pos] as char).is_ascii_alphanumeric()
                        || self.pos < bytes.len() && bytes[self.pos] == b'_'
                    {
                        self.pos += 1;
                    }
                    out.push((start, Tok::Ident(self.src[start..self.pos].to_string())));
                }
                '0'..='9' | '-' | '+' => {
                    self.pos += 1;
                    while self.pos < bytes.len()
                        && ((bytes[self.pos] as char).is_ascii_digit() || bytes[self.pos] == b'.')
                    {
                        // Don't eat a '.' that starts `.*` or `.attr` — numbers
                        // here never appear qualified, so a digit must follow.
                        if bytes[self.pos] == b'.'
                            && !(self.pos + 1 < bytes.len()
                                && (bytes[self.pos + 1] as char).is_ascii_digit())
                        {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push((start, Tok::Number(self.src[start..self.pos].to_string())));
                }
                '\'' => {
                    self.pos += 1;
                    let s0 = self.pos;
                    while self.pos < bytes.len() && bytes[self.pos] != b'\'' {
                        self.pos += 1;
                    }
                    if self.pos >= bytes.len() {
                        return Err(self.error("unterminated string literal"));
                    }
                    out.push((start, Tok::Str(self.src[s0..self.pos].to_string())));
                    self.pos += 1;
                }
                '<' => {
                    self.pos += 1;
                    if self.pos < bytes.len() && bytes[self.pos] == b'=' {
                        self.pos += 1;
                        out.push((start, Tok::Symbol("<=")));
                    } else if self.pos < bytes.len() && bytes[self.pos] == b'>' {
                        self.pos += 1;
                        out.push((start, Tok::Symbol("!=")));
                    } else {
                        out.push((start, Tok::Symbol("<")));
                    }
                }
                '>' => {
                    self.pos += 1;
                    if self.pos < bytes.len() && bytes[self.pos] == b'=' {
                        self.pos += 1;
                        out.push((start, Tok::Symbol(">=")));
                    } else {
                        out.push((start, Tok::Symbol(">")));
                    }
                }
                '!' => {
                    self.pos += 1;
                    if self.pos < bytes.len() && bytes[self.pos] == b'=' {
                        self.pos += 1;
                        out.push((start, Tok::Symbol("!=")));
                    } else {
                        return Err(self.error("expected '=' after '!'"));
                    }
                }
                '=' => {
                    self.pos += 1;
                    out.push((start, Tok::Symbol("=")));
                }
                ',' => {
                    self.pos += 1;
                    out.push((start, Tok::Symbol(",")));
                }
                '.' => {
                    self.pos += 1;
                    out.push((start, Tok::Symbol(".")));
                }
                '*' => {
                    self.pos += 1;
                    out.push((start, Tok::Symbol("*")));
                }
                '(' => {
                    self.pos += 1;
                    out.push((start, Tok::Symbol("(")));
                }
                ')' => {
                    self.pos += 1;
                    out.push((start, Tok::Symbol(")")));
                }
                '[' => {
                    self.pos += 1;
                    out.push((start, Tok::Symbol("[")));
                }
                ']' => {
                    self.pos += 1;
                    out.push((start, Tok::Symbol("]")));
                }
                other => return Err(self.error(format!("unexpected character {other:?}"))),
            }
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    idx: usize,
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx).map(|(_, t)| t)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.idx).map_or(self.end, |(o, _)| *o)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.offset(), message: message.into() }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.idx).map(|(_, t)| t.clone());
        if t.is_some() {
            self.idx += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.idx += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword {kw}")))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if let Some(Tok::Symbol(s)) = self.peek() {
            if *s == sym {
                self.idx += 1;
                return true;
            }
        }
        false
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{sym}'")))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(_)) => match self.next() {
                Some(Tok::Ident(s)) => Ok(s),
                _ => unreachable!(),
            },
            _ => Err(self.error("expected identifier")),
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        self.expect_keyword("SELECT")?;
        let projection = self.parse_projlist()?;
        self.expect_keyword("FROM")?;
        let relations = self.parse_fromlist()?;
        let predicates = if self.eat_keyword("WHERE") {
            self.parse_conjunction(&relations)?
        } else {
            Vec::new()
        };
        if self.peek().is_some() {
            return Err(self.error("trailing input after query"));
        }
        Ok(Query { projection, relations, predicates })
    }

    fn parse_projlist(&mut self) -> Result<Vec<ProjItem>, ParseError> {
        let mut items = vec![self.parse_projitem()?];
        while self.eat_symbol(",") {
            items.push(self.parse_projitem()?);
        }
        Ok(items)
    }

    fn parse_projitem(&mut self) -> Result<ProjItem, ParseError> {
        if self.eat_symbol("*") {
            return Ok(ProjItem::All);
        }
        let first = self.expect_ident()?;
        // Aggregate function: FUNC '(' alias '.' attr ')'.
        if let Some(func) = aggregate_func(&first) {
            if self.eat_symbol("(") {
                let alias = self.expect_ident()?;
                self.expect_symbol(".")?;
                let attr = self.expect_ident()?;
                self.expect_symbol(")")?;
                return Ok(ProjItem::Agg { func, attr: AttrRef { relation: alias, attr } });
            }
        }
        self.expect_symbol(".")?;
        if self.eat_symbol("*") {
            Ok(ProjItem::AllOf(first))
        } else {
            let attr = self.expect_ident()?;
            Ok(ProjItem::Attr(AttrRef { relation: first, attr }))
        }
    }

    fn parse_fromlist(&mut self) -> Result<Vec<RelationRef>, ParseError> {
        let mut rels = vec![self.parse_relation()?];
        while self.eat_symbol(",") {
            rels.push(self.parse_relation()?);
        }
        Ok(rels)
    }

    fn parse_relation(&mut self) -> Result<RelationRef, ParseError> {
        let stream = self.expect_ident()?;
        let window = if self.eat_symbol("[") {
            let w = self.parse_window()?;
            self.expect_symbol("]")?;
            w
        } else {
            Window::Unbounded
        };
        // Optional alias: an identifier that is not WHERE.
        let alias = if !self.is_keyword("WHERE") {
            if let Some(Tok::Ident(_)) = self.peek() {
                self.expect_ident()?
            } else {
                stream.clone()
            }
        } else {
            stream.clone()
        };
        Ok(RelationRef { stream, window, alias })
    }

    fn parse_window(&mut self) -> Result<Window, ParseError> {
        if self.eat_keyword("NOW") {
            return Ok(Window::Now);
        }
        if self.eat_keyword("UNBOUNDED") {
            return Ok(Window::Unbounded);
        }
        self.expect_keyword("RANGE")?;
        let n = match self.next() {
            Some(Tok::Number(n)) => {
                n.parse::<u64>().map_err(|_| self.error(format!("invalid window length {n:?}")))?
            }
            _ => return Err(self.error("expected window length")),
        };
        let unit = self.expect_ident()?;
        let ms = match unit.to_ascii_lowercase().as_str() {
            "millisecond" | "milliseconds" | "ms" => 1,
            "second" | "seconds" => 1000,
            "minute" | "minutes" => 60_000,
            "hour" | "hours" => 3_600_000,
            "day" | "days" => 86_400_000,
            other => return Err(self.error(format!("unknown time unit {other:?}"))),
        };
        Ok(Window::Range(n * ms))
    }

    fn parse_conjunction(&mut self, rels: &[RelationRef]) -> Result<Vec<Predicate>, ParseError> {
        let mut preds = vec![self.parse_comparison(rels)?];
        while self.eat_keyword("AND") {
            preds.push(self.parse_comparison(rels)?);
        }
        Ok(preds)
    }

    fn parse_operand(&mut self, rels: &[RelationRef]) -> Result<Operand, ParseError> {
        match self.peek() {
            Some(Tok::Number(_)) => match self.next() {
                Some(Tok::Number(n)) => {
                    if n.contains('.') {
                        let f = n
                            .parse::<f64>()
                            .map_err(|_| self.error(format!("invalid number {n:?}")))?;
                        Ok(Operand::Const(Scalar::Float(f)))
                    } else {
                        let i = n
                            .parse::<i64>()
                            .map_err(|_| self.error(format!("invalid number {n:?}")))?;
                        Ok(Operand::Const(Scalar::Int(i)))
                    }
                }
                _ => unreachable!(),
            },
            Some(Tok::Str(_)) => match self.next() {
                Some(Tok::Str(s)) => Ok(Operand::Const(Scalar::Str(s))),
                _ => unreachable!(),
            },
            Some(Tok::Ident(_)) => {
                let first = self.expect_ident()?;
                if self.eat_symbol(".") {
                    let attr = self.expect_ident()?;
                    Ok(Operand::Attr(AttrRef { relation: first, attr }))
                } else if rels.len() == 1 {
                    // Unqualified attribute in a single-relation query.
                    Ok(Operand::Attr(AttrRef { relation: rels[0].alias.clone(), attr: first }))
                } else {
                    Err(self.error(format!(
                        "unqualified attribute {first:?} is ambiguous over multiple relations"
                    )))
                }
            }
            _ => Err(self.error("expected attribute or constant")),
        }
    }

    fn parse_comparison(&mut self, rels: &[RelationRef]) -> Result<Predicate, ParseError> {
        let left = self.parse_operand(rels)?;
        let op = match self.next() {
            Some(Tok::Symbol(s)) => match s {
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                "=" => CmpOp::Eq,
                "!=" => CmpOp::Ne,
                other => return Err(self.error(format!("expected comparison, found {other:?}"))),
            },
            _ => return Err(self.error("expected comparison operator")),
        };
        let right = self.parse_operand(rels)?;
        match (left, right) {
            (Operand::Attr(l), Operand::Attr(r)) => {
                if l.relation == r.relation {
                    Err(self.error(
                        "comparisons between two attributes of the same relation are not supported",
                    ))
                } else {
                    Ok(Predicate::JoinCmp { left: l, op, right: r })
                }
            }
            (Operand::Attr(a), Operand::Const(v)) => Ok(Predicate::Cmp { attr: a, op, value: v }),
            (Operand::Const(v), Operand::Attr(a)) => {
                Ok(Predicate::Cmp { attr: a, op: op.flipped(), value: v })
            }
            (Operand::Const(_), Operand::Const(_)) => {
                Err(self.error("comparison between two constants"))
            }
        }
    }
}

enum Operand {
    Attr(AttrRef),
    Const(Scalar),
}

/// Maps a (case-insensitive) identifier to an aggregate function.
fn aggregate_func(name: &str) -> Option<crate::ast::AggFunc> {
    use crate::ast::AggFunc::*;
    match name.to_ascii_uppercase().as_str() {
        "COUNT" => Some(Count),
        "SUM" => Some(Sum),
        "AVG" => Some(Avg),
        "MIN" => Some(Min),
        "MAX" => Some(Max),
        _ => None,
    }
}

/// Parses a CQL-subset query string.
///
/// # Errors
///
/// Returns [`ParseError`] on lexical or syntactic problems, and when the
/// parsed query is not well-formed (unknown alias, duplicate alias, …).
///
/// # Examples
///
/// ```
/// use cosmos_query::parse_query;
///
/// let q = parse_query("SELECT * FROM R [Now], S [Now] WHERE R.b = S.b AND R.a > 10")?;
/// assert_eq!(q.join_predicates().count(), 1);
/// # Ok::<(), cosmos_query::ParseError>(())
/// ```
pub fn parse_query(src: &str) -> Result<Query, ParseError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser { toks, idx: 0, end: src.len() };
    let q = p.parse_query()?;
    if !q.is_well_formed() {
        return Err(ParseError {
            offset: 0,
            message: "query is not well-formed (unknown or duplicate alias)".into(),
        });
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, Predicate, ProjItem, Window};

    #[test]
    fn parses_paper_q1() {
        let q = parse_query("SELECT * FROM R [Now], S [Now] WHERE R.b = S.b AND R.a>10 AND S.c>10")
            .unwrap();
        assert_eq!(q.projection, vec![ProjItem::All]);
        assert_eq!(q.relations.len(), 2);
        assert_eq!(q.relations[0].window, Window::Now);
        assert_eq!(q.join_predicates().count(), 1);
        assert_eq!(q.selection_predicates().count(), 2);
    }

    #[test]
    fn parses_paper_q3_with_alias_and_range() {
        let q = parse_query(
            "SELECT S2.* FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2 \
             WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10",
        )
        .unwrap();
        assert_eq!(q.relations[0].alias, "S1");
        assert_eq!(q.relations[0].window, Window::Range(30 * 60_000));
        assert_eq!(q.projection, vec![ProjItem::AllOf("S2".into())]);
    }

    #[test]
    fn parses_paper_q4_projection_list() {
        let q = parse_query(
            "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp \
             FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2 \
             WHERE S1.snowHeight > S2.snowHeight",
        )
        .unwrap();
        assert_eq!(q.projection.len(), 4);
        assert_eq!(q.relations[0].window, Window::Range(3_600_000));
    }

    #[test]
    fn constant_on_left_flips() {
        let q = parse_query("SELECT * FROM R [Now] WHERE 10 < R.a").unwrap();
        match &q.predicates[0] {
            Predicate::Cmp { attr, op, value } => {
                assert_eq!(attr.attr, "a");
                assert_eq!(*op, CmpOp::Gt);
                assert_eq!(value.as_f64(), Some(10.0));
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn unqualified_attr_resolves_in_single_relation() {
        let q = parse_query("SELECT * FROM R [Now] WHERE a >= 5").unwrap();
        match &q.predicates[0] {
            Predicate::Cmp { attr, .. } => assert_eq!(attr.relation, "R"),
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn unqualified_attr_ambiguous_in_join() {
        let err = parse_query("SELECT * FROM R [Now], S [Now] WHERE a >= 5").unwrap_err();
        assert!(err.message.contains("ambiguous"));
    }

    #[test]
    fn window_units() {
        for (text, ms) in [
            ("Range 5 Seconds", 5_000),
            ("Range 2 Minutes", 120_000),
            ("Range 1 Hour", 3_600_000),
            ("Range 500 Milliseconds", 500),
            ("Range 1 Day", 86_400_000),
        ] {
            let q = parse_query(&format!("SELECT * FROM R [{text}]")).unwrap();
            assert_eq!(q.relations[0].window, Window::Range(ms), "{text}");
        }
        let q = parse_query("SELECT * FROM R [Unbounded]").unwrap();
        assert_eq!(q.relations[0].window, Window::Unbounded);
        let q = parse_query("SELECT * FROM R").unwrap();
        assert_eq!(q.relations[0].window, Window::Unbounded);
    }

    #[test]
    fn float_and_string_literals() {
        let q = parse_query("SELECT * FROM R [Now] WHERE R.x >= 1.5 AND R.name = 'alpha'").unwrap();
        assert_eq!(q.predicates.len(), 2);
        match &q.predicates[1] {
            Predicate::Cmp { value: Scalar::Str(s), .. } => assert_eq!(s, "alpha"),
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn not_equal_variants() {
        for src in ["SELECT * FROM R [Now] WHERE R.a != 3", "SELECT * FROM R [Now] WHERE R.a <> 3"]
        {
            let q = parse_query(src).unwrap();
            match &q.predicates[0] {
                Predicate::Cmp { op, .. } => assert_eq!(*op, CmpOp::Ne),
                other => panic!("unexpected predicate {other:?}"),
            }
        }
    }

    #[test]
    fn error_cases_report_offsets() {
        for src in [
            "FROM R",
            "SELECT",
            "SELECT * FROM",
            "SELECT * FROM R [Range ten Minutes]",
            "SELECT * FROM R [Now] WHERE",
            "SELECT * FROM R [Now] WHERE R.a >",
            "SELECT * FROM R [Now] WHERE 3 < 4",
            "SELECT * FROM R [Now] extra garbage ,",
            "SELECT * FROM R [Now] WHERE R.a > 10 trailing",
            "SELECT Z.* FROM R [Now]",
        ] {
            let err = parse_query(src).unwrap_err();
            assert!(!err.message.is_empty(), "{src} should fail with a message");
        }
    }

    #[test]
    fn same_relation_attr_comparison_rejected() {
        let err = parse_query("SELECT * FROM R [Now], S [Now] WHERE R.a > R.b").unwrap_err();
        assert!(err.message.contains("same relation"));
    }

    #[test]
    fn display_parse_round_trip() {
        let srcs = [
            "SELECT * FROM R [Now], S [Now] WHERE R.b = S.b AND R.a > 10 AND S.c > 10",
            "SELECT S2.* FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2 \
             WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10",
            "SELECT R.a, S.b FROM R [Range 2 Hours], S [Unbounded] WHERE R.k = S.k",
        ];
        for src in srcs {
            let q1 = parse_query(src).unwrap();
            let q2 = parse_query(&q1.to_string()).unwrap();
            assert_eq!(q1, q2, "round-trip failed for {src}");
        }
    }

    #[test]
    fn aggregate_projection_items() {
        let q = parse_query(
            "SELECT AVG(S1.snowHeight), COUNT(S1.snowHeight), S1.timestamp              FROM Station1 [Range 30 Minutes] S1 WHERE S1.snowHeight >= 0",
        )
        .unwrap();
        assert!(q.has_aggregates());
        assert_eq!(q.projection.len(), 3);
        match &q.projection[0] {
            ProjItem::Agg { func, attr } => {
                assert_eq!(*func, cosmos_query_aggfunc::Avg);
                assert_eq!(attr.attr, "snowHeight");
            }
            other => panic!("unexpected item {other:?}"),
        }
        // Case-insensitive function names.
        let q2 = parse_query("SELECT avg(R.v) FROM R [Now]").unwrap();
        assert!(q2.has_aggregates());
        // Round trip through Display.
        let q3 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q3);
    }

    use crate::ast::AggFunc as cosmos_query_aggfunc;

    #[test]
    fn aggregate_name_without_parens_is_an_attribute() {
        // `Count` used as a plain alias/attr must still parse as attribute.
        let q = parse_query("SELECT Count.v FROM Count [Now]").unwrap();
        assert!(!q.has_aggregates());
        match &q.projection[0] {
            ProjItem::Attr(ar) => assert_eq!(ar.relation, "Count"),
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn unknown_alias_in_aggregate_rejected() {
        let err = parse_query("SELECT AVG(Z.v) FROM R [Now]").unwrap_err();
        assert!(!err.message.is_empty());
    }

    #[test]
    fn negative_numbers() {
        let q = parse_query("SELECT * FROM R [Now] WHERE R.t > -5").unwrap();
        match &q.predicates[0] {
            Predicate::Cmp { value, .. } => assert_eq!(value.as_f64(), Some(-5.0)),
            other => panic!("unexpected predicate {other:?}"),
        }
    }
}
