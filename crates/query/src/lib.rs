//! CQL-subset continuous query language for the COSMOS reproduction.
//!
//! The paper's users submit continuous queries "specified in an SQL-like
//! language similar to CQL" (§2). The subset this crate implements is exactly
//! what the paper's examples exercise (Figure 1, Table 1):
//!
//! - `SELECT` lists with `*`, `alias.*`, and qualified attributes,
//! - `FROM` with per-relation windows: `[Now]`, `[Range n unit]`,
//!   `[Unbounded]`,
//! - conjunctive `WHERE` clauses of selection predicates
//!   (`S1.snowHeight >= 10`) and join predicates
//!   (`R.b = S.b`, `S1.snowHeight > S2.snowHeight`).
//!
//! On top of the AST the crate provides:
//!
//! - [`parser`]: a recursive-descent parser with helpful errors,
//! - [`predicate`]: evaluation and *implication* checking for predicates
//!   (needed both for early filtering in the Pub/Sub and for containment),
//! - [`containment`]: the extension of classical query containment /
//!   equivalence to window-based continuous queries (§2.1, ref \[25\]) used to
//!   share result streams: merging overlapping queries into one covering
//!   query plus residual per-user subscription filters.
//!
//! # Examples
//!
//! ```
//! use cosmos_query::parse_query;
//!
//! let q3 = parse_query(
//!     "SELECT S2.* \
//!      FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2 \
//!      WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10",
//! )?;
//! assert_eq!(q3.relations.len(), 2);
//! assert_eq!(q3.selection_predicates().count(), 1);
//! # Ok::<(), cosmos_query::parser::ParseError>(())
//! ```

pub mod ast;
pub mod compiled;
pub mod containment;
pub mod parser;
pub mod predicate;
pub mod record;

pub use ast::{
    AggFunc, AttrRef, CmpOp, Predicate, ProjItem, Query, QueryId, RelationRef, Scalar, Window,
};
pub use compiled::{eval_compiled, CompiledPredicate, ScalarRef, SymSource};
pub use containment::{coverer_bounds, covers, merge_queries, CoverBounds, MergedQuery};
pub use parser::{parse_query, ParseError};
pub use record::Record;
