//! Symbol-compiled predicates for the per-tuple hot path.
//!
//! [`crate::predicate::eval_predicate`] resolves every `AttrRef` by string
//! comparison on every tuple. A [`CompiledPredicate`] does that resolution
//! **once per query**: relation aliases and attribute names are interned to
//! [`Symbol`]s at compile time, and evaluation asks the tuple source for
//! values by symbol — integer compares against the tuple's schema, no
//! string traffic, no `Scalar` clones (values flow as borrowed
//! [`ScalarRef`]s).
//!
//! The engine (`cosmos-engine`) and the broker (`cosmos-pubsub`) both
//! compile their filters through this module; the string-based evaluator
//! remains for AST-level tooling (containment, implication) and as the
//! semantic reference the compiled path is tested against.

use crate::ast::{AttrRef, CmpOp, Predicate, Scalar};
use cosmos_util::intern::{sym_timestamp, Symbol};

/// A borrowed view of a [`Scalar`] — `Copy`, so predicate evaluation never
/// clones a `String`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalarRef<'a> {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Borrowed string.
    Str(&'a str),
}

impl<'a> ScalarRef<'a> {
    /// Numeric view, if numeric.
    pub fn as_f64(self) -> Option<f64> {
        match self {
            ScalarRef::Int(i) => Some(i as f64),
            ScalarRef::Float(f) => Some(f),
            ScalarRef::Str(_) => None,
        }
    }
}

impl<'a> From<&'a Scalar> for ScalarRef<'a> {
    fn from(s: &'a Scalar) -> Self {
        match s {
            Scalar::Int(i) => ScalarRef::Int(*i),
            Scalar::Float(f) => ScalarRef::Float(*f),
            Scalar::Str(s) => ScalarRef::Str(s),
        }
    }
}

/// Compares two scalar views under `op`; `None` when incomparable.
pub fn compare_ref(op: CmpOp, l: ScalarRef<'_>, r: ScalarRef<'_>) -> Option<bool> {
    match (l, r) {
        (ScalarRef::Str(a), ScalarRef::Str(b)) => Some(match op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }),
        _ => {
            let (a, b) = (l.as_f64()?, r.as_f64()?);
            Some(op.eval_f64(a, b))
        }
    }
}

/// Source of attribute values addressed by interned symbols.
///
/// The `timestamp` pseudo-attribute is *not* special-cased here — compiled
/// predicates resolve it before calling `value`, so implementations only
/// serve stored attributes.
pub trait SymSource {
    /// The value of `attr` on relation `rel`, or `None` when absent.
    fn value(&self, rel: Symbol, attr: Symbol) -> Option<ScalarRef<'_>>;

    /// The event time (ms) of the tuple bound to `rel`, or `None`.
    fn timestamp(&self, rel: Symbol) -> Option<i64>;
}

/// One operand of a compiled comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// A stored attribute.
    Attr {
        /// Relation alias.
        rel: Symbol,
        /// Attribute name.
        attr: Symbol,
    },
    /// The relation's event time.
    Timestamp {
        /// Relation alias.
        rel: Symbol,
    },
}

impl Operand {
    /// Resolves an `AttrRef`, folding the `timestamp` pseudo-attribute.
    pub fn compile(attr: &AttrRef) -> Operand {
        let rel = Symbol::intern(&attr.relation);
        if attr.attr == "timestamp" {
            Operand::Timestamp { rel }
        } else {
            Operand::Attr { rel, attr: Symbol::intern(&attr.attr) }
        }
    }

    #[inline]
    fn resolve<'a, S: SymSource>(self, src: &'a S) -> Option<ScalarRef<'a>> {
        match self {
            Operand::Attr { rel, attr } => src.value(rel, attr),
            Operand::Timestamp { rel } => Some(ScalarRef::Int(src.timestamp(rel)?)),
        }
    }
}

/// A predicate with all names resolved to symbols at compile time.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledPredicate {
    /// Selection: `attr op constant`.
    Cmp {
        /// Left operand.
        operand: Operand,
        /// Comparison operator.
        op: CmpOp,
        /// Constant right-hand side.
        value: Scalar,
    },
    /// Join: `left op right`.
    JoinCmp {
        /// Left operand.
        left: Operand,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        right: Operand,
    },
    /// `min_ms <= ts(left) − ts(right) <= max_ms`.
    TimeDelta {
        /// Minuend relation.
        left: Symbol,
        /// Subtrahend relation.
        right: Symbol,
        /// Inclusive lower bound (ms).
        min_ms: i64,
        /// Inclusive upper bound (ms).
        max_ms: i64,
    },
}

impl CompiledPredicate {
    /// Resolves `p`'s names to symbols.
    pub fn compile(p: &Predicate) -> CompiledPredicate {
        match p {
            Predicate::Cmp { attr, op, value } => CompiledPredicate::Cmp {
                operand: Operand::compile(attr),
                op: *op,
                value: value.clone(),
            },
            Predicate::JoinCmp { left, op, right } => CompiledPredicate::JoinCmp {
                left: Operand::compile(left),
                op: *op,
                right: Operand::compile(right),
            },
            Predicate::TimeDelta { left, right, min_ms, max_ms } => CompiledPredicate::TimeDelta {
                left: Symbol::intern(left),
                right: Symbol::intern(right),
                min_ms: *min_ms,
                max_ms: *max_ms,
            },
        }
    }

    /// Compiles a whole conjunction.
    pub fn compile_all(preds: &[Predicate]) -> Vec<CompiledPredicate> {
        preds.iter().map(CompiledPredicate::compile).collect()
    }

    /// Evaluates against a symbol-addressed source. `None` when a
    /// referenced attribute is missing or the comparison is
    /// type-incoherent — callers treat that as "does not satisfy".
    #[inline]
    pub fn eval<S: SymSource>(&self, src: &S) -> Option<bool> {
        match self {
            CompiledPredicate::Cmp { operand, op, value } => {
                compare_ref(*op, operand.resolve(src)?, value.into())
            }
            CompiledPredicate::JoinCmp { left, op, right } => {
                compare_ref(*op, left.resolve(src)?, right.resolve(src)?)
            }
            CompiledPredicate::TimeDelta { left, right, min_ms, max_ms } => {
                let delta = src.timestamp(*left)? - src.timestamp(*right)?;
                Some(*min_ms <= delta && delta <= *max_ms)
            }
        }
    }
}

/// Evaluates a compiled conjunction; missing values make it false.
#[inline]
pub fn eval_compiled<S: SymSource>(preds: &[CompiledPredicate], src: &S) -> bool {
    preds.iter().all(|p| p.eval(src).unwrap_or(false))
}

/// The left-hand side of an indexable comparison: a stored attribute or
/// the event-time pseudo-attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexOperand {
    /// A stored attribute of the indexed relation.
    Attr(Symbol),
    /// The relation's event timestamp.
    Timestamp,
}

/// An extracted `attr op constant` comparison suitable for a sorted
/// threshold index (Siena-style counting index): the operand addresses the
/// indexed relation, the operator is an order/equality comparison (never
/// `!=` — its satisfied set is a complement, which a counting index cannot
/// represent as a contiguous range), and the constant is numeric.
///
/// The threshold is the constant's `f64` view. This is exactly faithful to
/// evaluation semantics: [`compare_ref`] also compares mixed numerics
/// through `f64`, so an index over `f64` thresholds satisfies a predicate
/// if and only if [`CompiledPredicate::eval`] would.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexableCmp {
    /// What the predicate reads from the message/tuple.
    pub operand: IndexOperand,
    /// The comparison operator (`Lt`/`Le`/`Gt`/`Ge`/`Eq`).
    pub op: CmpOp,
    /// The constant right-hand side as `f64`.
    pub threshold: f64,
}

impl CompiledPredicate {
    /// Extracts the indexable form of this predicate for relation `rel`,
    /// or `None` when it must be evaluated residually: join and time-delta
    /// predicates, `!=`, string constants, and comparisons addressing a
    /// different relation (which can never hold on `rel`'s messages, but
    /// residual evaluation reports that honestly).
    pub fn indexable_for(&self, rel: Symbol) -> Option<IndexableCmp> {
        let CompiledPredicate::Cmp { operand, op, value } = self else {
            return None;
        };
        if matches!(op, CmpOp::Ne) {
            return None;
        }
        let threshold = value.as_f64()?;
        let operand = match *operand {
            Operand::Attr { rel: r, attr } if r == rel => IndexOperand::Attr(attr),
            Operand::Timestamp { rel: r } if r == rel => IndexOperand::Timestamp,
            _ => return None,
        };
        Some(IndexableCmp { operand, op: *op, threshold })
    }
}

/// The timestamp pseudo-attribute symbol (re-exported for tuple sources).
pub fn timestamp_symbol() -> Symbol {
    sym_timestamp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{eval_predicate, AttrSource};
    use std::collections::HashMap;

    struct MapSource {
        values: HashMap<(Symbol, Symbol), Scalar>,
        times: HashMap<Symbol, i64>,
    }

    impl MapSource {
        fn new() -> Self {
            Self { values: HashMap::new(), times: HashMap::new() }
        }
        fn with(mut self, rel: &str, attr: &str, v: Scalar) -> Self {
            self.values.insert((Symbol::intern(rel), Symbol::intern(attr)), v);
            self
        }
        fn at(mut self, rel: &str, ts: i64) -> Self {
            self.times.insert(Symbol::intern(rel), ts);
            self
        }
    }

    impl SymSource for MapSource {
        fn value(&self, rel: Symbol, attr: Symbol) -> Option<ScalarRef<'_>> {
            self.values.get(&(rel, attr)).map(Into::into)
        }
        fn timestamp(&self, rel: Symbol) -> Option<i64> {
            self.times.get(&rel).copied()
        }
    }

    impl AttrSource for MapSource {
        fn value(&self, attr: &AttrRef) -> Option<Scalar> {
            if attr.attr == "timestamp" {
                return AttrSource::timestamp(self, &attr.relation).map(Scalar::Int);
            }
            self.values.get(&(Symbol::intern(&attr.relation), Symbol::intern(&attr.attr))).cloned()
        }
        fn timestamp(&self, alias: &str) -> Option<i64> {
            self.times.get(&Symbol::intern(alias)).copied()
        }
    }

    fn sources() -> Vec<MapSource> {
        vec![
            MapSource::new().with("R", "a", Scalar::Int(15)).at("R", 1_000),
            MapSource::new().with("R", "a", Scalar::Int(5)).at("R", 1_000),
            MapSource::new()
                .with("R", "a", Scalar::Float(7.5))
                .with("R", "s", Scalar::Str("x".into()))
                .at("R", 2_000),
            MapSource::new()
                .with("R", "b", Scalar::Int(3))
                .with("S", "b", Scalar::Int(3))
                .at("R", 1_000)
                .at("S", 1_500),
        ]
    }

    fn predicates() -> Vec<Predicate> {
        vec![
            Predicate::Cmp { attr: AttrRef::new("R", "a"), op: CmpOp::Gt, value: Scalar::Int(10) },
            Predicate::Cmp {
                attr: AttrRef::new("R", "s"),
                op: CmpOp::Eq,
                value: Scalar::Str("x".into()),
            },
            Predicate::Cmp {
                attr: AttrRef::new("R", "timestamp"),
                op: CmpOp::Ge,
                value: Scalar::Int(1_500),
            },
            Predicate::JoinCmp {
                left: AttrRef::new("R", "b"),
                op: CmpOp::Eq,
                right: AttrRef::new("S", "b"),
            },
            Predicate::JoinCmp {
                left: AttrRef::new("R", "timestamp"),
                op: CmpOp::Lt,
                right: AttrRef::new("S", "timestamp"),
            },
            Predicate::TimeDelta { left: "R".into(), right: "S".into(), min_ms: -1_000, max_ms: 0 },
        ]
    }

    /// The compiled evaluator must agree with the string-based reference on
    /// every (predicate, source) pair, including `None` (missing attrs).
    #[test]
    fn compiled_matches_reference_semantics() {
        for p in predicates() {
            let c = CompiledPredicate::compile(&p);
            for (i, src) in sources().iter().enumerate() {
                assert_eq!(
                    c.eval(src),
                    eval_predicate(&p, src),
                    "compiled vs reference diverged on predicate {p} source {i}"
                );
            }
        }
    }

    #[test]
    fn conjunction_short_circuits_missing_as_false() {
        let preds = CompiledPredicate::compile_all(&[
            Predicate::Cmp { attr: AttrRef::new("R", "a"), op: CmpOp::Gt, value: Scalar::Int(10) },
            Predicate::Cmp { attr: AttrRef::new("R", "zzz"), op: CmpOp::Lt, value: Scalar::Int(0) },
        ]);
        let src = &sources()[0];
        assert!(!eval_compiled(&preds, src));
        assert!(eval_compiled(&preds[..1], src));
    }

    #[test]
    fn scalar_ref_is_allocation_free_view() {
        let s = Scalar::Str("hello".into());
        let r: ScalarRef<'_> = (&s).into();
        assert_eq!(r, ScalarRef::Str("hello"));
        assert_eq!(ScalarRef::Int(3).as_f64(), Some(3.0));
        assert_eq!(ScalarRef::Str("x").as_f64(), None);
        assert_eq!(compare_ref(CmpOp::Lt, ScalarRef::Str("a"), ScalarRef::Str("b")), Some(true));
        assert_eq!(compare_ref(CmpOp::Gt, ScalarRef::Str("a"), ScalarRef::Int(1)), None);
    }
}
