//! Shortest-path routing and multicast-tree cost accounting.
//!
//! Communication cost in the paper is `Σ r(ni,nj) · d(ni,nj)` over links
//! (§3.1.1), where the Pub/Sub guarantees each message crosses each link at
//! most once. We model Pub/Sub delivery as routing along shortest paths from
//! the source with shared prefixes merged — i.e. the *union* of the
//! root-to-destination paths in the source's shortest-path tree. The cost of
//! delivering a stream of rate `r` to a destination set `D` is then
//! `r × Σ_{e ∈ union of paths} latency(e)`.

use crate::graph::{NodeId, Topology};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; ties broken by node id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// A shortest-path tree rooted at one node, with distances and parents.
///
/// # Examples
///
/// ```
/// use cosmos_net::{Topology, NodeId, ShortestPathTree};
///
/// let mut t = Topology::new(3);
/// t.add_edge(NodeId(0), NodeId(1), 1.0);
/// t.add_edge(NodeId(1), NodeId(2), 2.0);
/// let spt = ShortestPathTree::compute(&t, NodeId(0));
/// assert_eq!(spt.distance(NodeId(2)), Some(3.0));
/// ```
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    root: NodeId,
    dist: Vec<f64>,
    parent: Vec<Option<NodeId>>,
    /// Latency of the edge to the parent (aligned with `parent`).
    parent_latency: Vec<f64>,
}

impl ShortestPathTree {
    /// Runs Dijkstra from `root` over the whole topology.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range.
    pub fn compute(topo: &Topology, root: NodeId) -> Self {
        let n = topo.node_count();
        assert!(root.index() < n, "root {root} out of range");
        let mut dist = vec![f64::INFINITY; n];
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut parent_latency = vec![0.0; n];
        let mut done = vec![false; n];
        let mut heap = BinaryHeap::new();
        dist[root.index()] = 0.0;
        heap.push(HeapEntry { dist: 0.0, node: root });
        while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
            if done[u.index()] {
                continue;
            }
            done[u.index()] = true;
            for (v, w) in topo.neighbors(u) {
                let nd = d + w;
                if nd < dist[v.index()] {
                    dist[v.index()] = nd;
                    parent[v.index()] = Some(u);
                    parent_latency[v.index()] = w;
                    heap.push(HeapEntry { dist: nd, node: v });
                }
            }
        }
        Self { root, dist, parent, parent_latency }
    }

    /// The root of this tree.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Shortest-path distance from the root to `node`, or `None` when
    /// unreachable.
    pub fn distance(&self, node: NodeId) -> Option<f64> {
        let d = *self.dist.get(node.index())?;
        d.is_finite().then_some(d)
    }

    /// The parent of `node` in the tree (`None` for the root / unreachable).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        *self.parent.get(node.index())?
    }

    /// The full path from the root to `node` (inclusive), or `None` when
    /// unreachable.
    pub fn path_to(&self, node: NodeId) -> Option<Vec<NodeId>> {
        self.distance(node)?;
        let mut rev = vec![node];
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            rev.push(p);
            cur = p;
        }
        rev.reverse();
        Some(rev)
    }

    /// Returns `true` when `{a, b}` is a tree edge of this shortest-path
    /// tree — i.e. some node's root path traverses it.
    pub fn uses_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.parent(b) == Some(a) || self.parent(a) == Some(b)
    }

    /// Path provenance: every node whose root path traverses tree edge
    /// `{a, b}` — the subtree hanging below the edge. Returns `None` when
    /// `{a, b}` is not a tree edge (no path uses it, so removing that
    /// link from the topology leaves this tree exact).
    ///
    /// This is what lets a broker network re-route *only* the
    /// subscriptions whose installed paths crossed a failed link, instead
    /// of re-propagating the whole population.
    pub fn nodes_via_edge(&self, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
        let child = if self.parent(b) == Some(a) {
            b
        } else if self.parent(a) == Some(b) {
            a
        } else {
            return None;
        };
        // Memoized parent-chain walk: 1 = below the edge, 2 = not.
        let mut mark = vec![0u8; self.parent.len()];
        mark[child.index()] = 1;
        let mut below = vec![child];
        let mut chain = Vec::new();
        for i in 0..self.parent.len() {
            let node = NodeId(i as u32);
            if mark[i] != 0 || self.distance(node).is_none() {
                continue;
            }
            chain.clear();
            let mut cur = node;
            let verdict = loop {
                match mark[cur.index()] {
                    0 => {}
                    m => break m,
                }
                chain.push(cur);
                match self.parent(cur) {
                    Some(p) => cur = p,
                    None => break 2, // reached the root without crossing
                }
            };
            for &n in &chain {
                mark[n.index()] = verdict;
                if verdict == 1 {
                    below.push(n);
                }
            }
        }
        below.sort_unstable();
        Some(below)
    }

    /// Total latency of the multicast tree spanning the root and `dests`:
    /// the union of root-to-destination tree paths, each edge counted once.
    ///
    /// Unreachable destinations are skipped (they contribute nothing). A
    /// stream of rate `r` delivered to `dests` costs `r *
    /// multicast_tree_latency(dests)` — the Pub/Sub sharing model.
    pub fn multicast_tree_latency(&self, dests: &[NodeId]) -> f64 {
        let mut scratch = MulticastScratch::new(self.dist.len());
        self.multicast_tree_latency_with(dests, &mut scratch)
    }

    /// As [`Self::multicast_tree_latency`] but reusing a scratch buffer —
    /// the experiment driver calls this once per substream per evaluation.
    pub fn multicast_tree_latency_with(
        &self,
        dests: &[NodeId],
        scratch: &mut MulticastScratch,
    ) -> f64 {
        scratch.begin(self.dist.len());
        let mut total = 0.0;
        for &d in dests {
            if self.distance(d).is_none() {
                continue;
            }
            let mut cur = d;
            while cur != self.root && !scratch.visit(cur) {
                total += self.parent_latency[cur.index()];
                cur = self.parent(cur).expect("non-root tree node must have a parent");
            }
        }
        total
    }
}

/// Reusable visited-marking buffer for multicast cost computation.
#[derive(Debug, Default)]
pub struct MulticastScratch {
    epoch: u32,
    marks: Vec<u32>,
}

impl MulticastScratch {
    /// Creates a scratch buffer sized for `n` nodes.
    pub fn new(n: usize) -> Self {
        Self { epoch: 0, marks: vec![0; n] }
    }

    fn begin(&mut self, n: usize) {
        if self.marks.len() < n {
            self.marks.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.marks.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks `node`, returning `true` if it was already marked this epoch.
    fn visit(&mut self, node: NodeId) -> bool {
        let slot = &mut self.marks[node.index()];
        let seen = *slot == self.epoch;
        *slot = self.epoch;
        seen
    }
}

/// A bundle of shortest-path trees from a set of roots (e.g. every data
/// source), with an endpoint-to-endpoint distance lookup.
#[derive(Debug, Clone)]
pub struct SptForest {
    trees: Vec<ShortestPathTree>,
    root_index: Vec<Option<usize>>,
}

impl SptForest {
    /// Computes one tree per root.
    pub fn compute(topo: &Topology, roots: &[NodeId]) -> Self {
        let mut root_index = vec![None; topo.node_count()];
        let trees: Vec<ShortestPathTree> = roots
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                root_index[r.index()] = Some(i);
                ShortestPathTree::compute(topo, r)
            })
            .collect();
        Self { trees, root_index }
    }

    /// The tree rooted at `root`, if `root` was one of the requested roots.
    pub fn tree(&self, root: NodeId) -> Option<&ShortestPathTree> {
        let i = (*self.root_index.get(root.index())?)?;
        Some(&self.trees[i])
    }

    /// Iterates over all trees.
    pub fn iter(&self) -> impl Iterator<Item = &ShortestPathTree> {
        self.trees.iter()
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Returns `true` if no trees were computed.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

/// Dense symmetric distance matrix between a subset of *endpoint* nodes.
///
/// The query-distribution optimizer needs `d(ni, nj)` between processors and
/// sources (for WEC evaluation and coordinator clustering), not between all
/// 4096 physical nodes. This stores only the endpoint rows.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    endpoints: Vec<NodeId>,
    /// Position of each topology node in `endpoints`, or `None`.
    position: Vec<Option<usize>>,
    /// Row-major `endpoints.len() × endpoints.len()` distances.
    dist: Vec<f64>,
}

impl DistanceMatrix {
    /// Runs one Dijkstra per endpoint and keeps endpoint-to-endpoint rows.
    pub fn compute(topo: &Topology, endpoints: &[NodeId]) -> Self {
        let m = endpoints.len();
        let mut position = vec![None; topo.node_count()];
        for (i, &e) in endpoints.iter().enumerate() {
            position[e.index()] = Some(i);
        }
        let mut dist = vec![f64::INFINITY; m * m];
        for (i, &e) in endpoints.iter().enumerate() {
            let spt = ShortestPathTree::compute(topo, e);
            for (j, &f) in endpoints.iter().enumerate() {
                dist[i * m + j] = spt.distance(f).unwrap_or(f64::INFINITY);
            }
        }
        Self { endpoints: endpoints.to_vec(), position, dist }
    }

    /// The endpoint list, in row order.
    pub fn endpoints(&self) -> &[NodeId] {
        &self.endpoints
    }

    /// Distance between endpoints `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either node is not an endpoint of this matrix.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        let i = self.position[a.index()].unwrap_or_else(|| panic!("{a} is not an endpoint"));
        let j = self.position[b.index()].unwrap_or_else(|| panic!("{b} is not an endpoint"));
        self.dist[i * self.endpoints.len() + j]
    }

    /// Distance by endpoint row/col index (avoids the node-id lookup).
    pub fn distance_by_index(&self, i: usize, j: usize) -> f64 {
        self.dist[i * self.endpoints.len() + j]
    }

    /// Row/col index of an endpoint node, if present.
    pub fn index_of(&self, node: NodeId) -> Option<usize> {
        *self.position.get(node.index())?
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn line(n: usize) -> Topology {
        let mut t = Topology::new(n);
        for i in 0..n - 1 {
            t.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), 1.0);
        }
        t
    }

    #[test]
    fn dijkstra_on_line() {
        let t = line(5);
        let spt = ShortestPathTree::compute(&t, NodeId(0));
        for i in 0..5u32 {
            assert_eq!(spt.distance(NodeId(i)), Some(i as f64));
        }
        assert_eq!(
            spt.path_to(NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn dijkstra_prefers_cheaper_detour() {
        // 0 -10- 1, 0 -1- 2 -1- 1 : detour wins
        let mut t = Topology::new(3);
        t.add_edge(NodeId(0), NodeId(1), 10.0);
        t.add_edge(NodeId(0), NodeId(2), 1.0);
        t.add_edge(NodeId(2), NodeId(1), 1.0);
        let spt = ShortestPathTree::compute(&t, NodeId(0));
        assert_eq!(spt.distance(NodeId(1)), Some(2.0));
        assert_eq!(spt.parent(NodeId(1)), Some(NodeId(2)));
    }

    #[test]
    fn nodes_via_edge_returns_the_subtree() {
        // 0 - 1 - 2 and 1 - 3: edge (1, 2)'s subtree is {2}; edge (0, 1)
        // carries everything but the root.
        let mut t = Topology::new(5);
        t.add_edge(NodeId(0), NodeId(1), 5.0);
        t.add_edge(NodeId(1), NodeId(2), 1.0);
        t.add_edge(NodeId(1), NodeId(3), 2.0);
        let spt = ShortestPathTree::compute(&t, NodeId(0));
        assert!(spt.uses_edge(NodeId(1), NodeId(2)));
        assert_eq!(spt.nodes_via_edge(NodeId(1), NodeId(2)), Some(vec![NodeId(2)]));
        assert_eq!(spt.nodes_via_edge(NodeId(2), NodeId(1)), Some(vec![NodeId(2)]));
        assert_eq!(
            spt.nodes_via_edge(NodeId(0), NodeId(1)),
            Some(vec![NodeId(1), NodeId(2), NodeId(3)])
        );
        // Unreachable node 4 never appears in any subtree.
        assert!(!spt.nodes_via_edge(NodeId(0), NodeId(1)).unwrap().contains(&NodeId(4)));
        // Not a tree edge (not even a graph edge): no path uses it.
        assert!(!spt.uses_edge(NodeId(2), NodeId(3)));
        assert_eq!(spt.nodes_via_edge(NodeId(2), NodeId(3)), None);
    }

    #[test]
    fn nodes_via_edge_skips_non_tree_graph_edges() {
        // Ring 0-1-2-3-0: the tree from 0 reaches 2 via 1 (id tie-break),
        // so graph edge (2, 3) exists but carries no tree path.
        let mut t = Topology::new(4);
        for i in 0..4u32 {
            t.add_edge(NodeId(i), NodeId((i + 1) % 4), 1.0);
        }
        let spt = ShortestPathTree::compute(&t, NodeId(0));
        assert_eq!(spt.nodes_via_edge(NodeId(2), NodeId(3)), None);
        assert_eq!(spt.nodes_via_edge(NodeId(1), NodeId(2)), Some(vec![NodeId(2)]));
        assert_eq!(spt.nodes_via_edge(NodeId(0), NodeId(3)), Some(vec![NodeId(3)]));
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = Topology::new(3);
        t.add_edge(NodeId(0), NodeId(1), 1.0);
        let spt = ShortestPathTree::compute(&t, NodeId(0));
        assert_eq!(spt.distance(NodeId(2)), None);
        assert_eq!(spt.path_to(NodeId(2)), None);
        // Multicast skips unreachable destinations.
        assert_eq!(spt.multicast_tree_latency(&[NodeId(2)]), 0.0);
    }

    #[test]
    fn multicast_shares_common_prefix() {
        // Star-of-paths: 0 - 1 - 2 and 1 - 3; sending to {2, 3} shares edge (0,1).
        let mut t = Topology::new(4);
        t.add_edge(NodeId(0), NodeId(1), 5.0);
        t.add_edge(NodeId(1), NodeId(2), 1.0);
        t.add_edge(NodeId(1), NodeId(3), 2.0);
        let spt = ShortestPathTree::compute(&t, NodeId(0));
        assert_eq!(spt.multicast_tree_latency(&[NodeId(2)]), 6.0);
        assert_eq!(spt.multicast_tree_latency(&[NodeId(3)]), 7.0);
        // Shared: 5 + 1 + 2 = 8, not 6 + 7 = 13.
        assert_eq!(spt.multicast_tree_latency(&[NodeId(2), NodeId(3)]), 8.0);
        // Duplicate destinations count once.
        assert_eq!(spt.multicast_tree_latency(&[NodeId(2), NodeId(2), NodeId(3)]), 8.0);
        // Root costs nothing.
        assert_eq!(spt.multicast_tree_latency(&[NodeId(0)]), 0.0);
    }

    #[test]
    fn distance_matrix_matches_tree_distances() {
        let t = line(6);
        let eps = [NodeId(0), NodeId(2), NodeId(5)];
        let m = DistanceMatrix::compute(&t, &eps);
        assert_eq!(m.distance(NodeId(0), NodeId(5)), 5.0);
        assert_eq!(m.distance(NodeId(2), NodeId(0)), 2.0);
        assert_eq!(m.distance(NodeId(2), NodeId(2)), 0.0);
        assert_eq!(m.index_of(NodeId(5)), Some(2));
        assert_eq!(m.index_of(NodeId(1)), None);
    }

    #[test]
    fn forest_lookup_by_root() {
        let t = line(4);
        let f = SptForest::compute(&t, &[NodeId(1), NodeId(3)]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.tree(NodeId(3)).unwrap().root(), NodeId(3));
        assert!(f.tree(NodeId(0)).is_none());
    }

    /// Random connected graph strategy: a spanning path plus random extras.
    fn arb_graph() -> impl Strategy<Value = (Topology, u64)> {
        (
            3usize..24,
            proptest::collection::vec((0usize..24, 0usize..24, 1u32..100), 0..40),
            0u64..1000,
        )
            .prop_map(|(n, extra, seed)| {
                let mut t = Topology::new(n);
                for i in 0..n - 1 {
                    let lat = 1.0 + ((i as u64 * 7 + seed) % 10) as f64;
                    t.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), lat);
                }
                for (a, b, w) in extra {
                    let (a, b) = (a % n, b % n);
                    if a != b {
                        t.add_edge(NodeId(a as u32), NodeId(b as u32), w as f64 / 10.0);
                    }
                }
                (t, seed)
            })
    }

    proptest! {
        #[test]
        fn prop_triangle_inequality((t, _) in arb_graph()) {
            let ids: Vec<NodeId> = t.nodes().collect();
            let m = DistanceMatrix::compute(&t, &ids);
            for &a in ids.iter().take(6) {
                for &b in ids.iter().take(6) {
                    for &c in ids.iter().take(6) {
                        prop_assert!(
                            m.distance(a, c) <= m.distance(a, b) + m.distance(b, c) + 1e-9
                        );
                    }
                }
            }
        }

        #[test]
        fn prop_distances_symmetric((t, _) in arb_graph()) {
            let ids: Vec<NodeId> = t.nodes().collect();
            let m = DistanceMatrix::compute(&t, &ids);
            for &a in &ids {
                for &b in &ids {
                    prop_assert!((m.distance(a, b) - m.distance(b, a)).abs() < 1e-9);
                }
            }
        }

        #[test]
        fn prop_multicast_bounded_by_sum_of_paths((t, _) in arb_graph()) {
            let spt = ShortestPathTree::compute(&t, NodeId(0));
            let dests: Vec<NodeId> = t.nodes().filter(|n| n.0 % 2 == 1).collect();
            let union = spt.multicast_tree_latency(&dests);
            let sum: f64 = dests.iter().filter_map(|&d| spt.distance(d)).sum();
            let max: f64 = dests
                .iter()
                .filter_map(|&d| spt.distance(d))
                .fold(0.0, f64::max);
            prop_assert!(union <= sum + 1e-9, "union {union} > sum {sum}");
            prop_assert!(union >= max - 1e-9, "union {union} < max path {max}");
        }
    }
}
