//! Network substrate for the COSMOS reproduction.
//!
//! The paper's simulation study (§4.1) generates "a network topology with
//! 4096 nodes … using the Transit-Stub model in the GT-ITM topology
//! generator", selects 100 data sources and 256 stream processors, and treats
//! the rest as routers. GT-ITM is 1990s C software we cannot ship, so this
//! crate implements the same structural model from scratch:
//!
//! - [`graph::Topology`]: an undirected latency-weighted graph.
//! - [`transit_stub`]: a Transit-Stub generator — transit domains form a
//!   well-connected core, each transit node hosts several stub domains, edge
//!   latencies are drawn per tier (intra-stub ≪ stub-transit < intra-transit
//!   < inter-transit), matching how GT-ITM topologies are parameterized.
//! - [`routing`]: Dijkstra shortest paths, shortest-path trees, and
//!   multicast-tree cost accounting (union of root-to-destination paths) —
//!   exactly the "a message is sent over each link at most once" behaviour a
//!   Pub/Sub inherits from multicast (§1.2).
//! - [`deploy::Deployment`]: role assignment (sources / processors / routers)
//!   plus the endpoint-to-endpoint latency matrix the optimizer consumes.
//!
//! # Examples
//!
//! ```
//! use cosmos_net::transit_stub::TransitStubConfig;
//! use cosmos_net::deploy::Deployment;
//!
//! let topo = TransitStubConfig::small().generate(42);
//! let dep = Deployment::assign(topo, 4, 8, 42);
//! assert_eq!(dep.sources().len(), 4);
//! assert_eq!(dep.processors().len(), 8);
//! ```

pub mod deploy;
pub mod graph;
pub mod routing;
pub mod transit_stub;

pub use deploy::Deployment;
pub use graph::{NodeId, Topology};
pub use routing::{ShortestPathTree, SptForest};
pub use transit_stub::TransitStubConfig;
