//! Transit-Stub topology generation (the GT-ITM model, reimplemented).
//!
//! Structure, following Zegura/Calvert/Bhattacharjee's Transit-Stub model:
//!
//! - `transit_domains` transit domains; the domains are connected into a ring
//!   plus random chords so the core survives any single failure.
//! - Each transit domain has `transit_nodes_per_domain` nodes connected as a
//!   ring plus random chords (intra-transit latencies).
//! - Each transit node attaches `stub_domains_per_transit` stub domains of
//!   `stub_nodes_per_domain` nodes each; a stub domain is a random connected
//!   subgraph (spanning tree + extra edges) with small intra-stub latencies,
//!   linked to its transit node through a random gateway stub node.
//!
//! Latency classes mirror wide-area reality: intra-stub (LAN/metro) ≪
//! stub-transit (regional) < intra-transit (national backbone) <
//! inter-transit (inter-continental). Figure-level experiments only consume
//! role assignments and pairwise latencies, so matching GT-ITM's *structure*
//! suffices for reproduction.

use crate::graph::{NodeId, Topology};
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Inclusive latency range for one edge tier, in milliseconds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LatencyRange {
    /// Lower bound (ms).
    pub min: f64,
    /// Upper bound (ms).
    pub max: f64,
}

impl LatencyRange {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.max <= self.min {
            self.min
        } else {
            rng.gen_range(self.min..=self.max)
        }
    }
}

/// Configuration of the Transit-Stub generator.
///
/// # Examples
///
/// ```
/// use cosmos_net::TransitStubConfig;
///
/// let topo = TransitStubConfig::paper_scale().generate(7);
/// assert!(topo.node_count() >= 4096);
/// assert!(topo.is_connected());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransitStubConfig {
    /// Number of transit (core) domains.
    pub transit_domains: usize,
    /// Transit nodes per transit domain.
    pub transit_nodes_per_domain: usize,
    /// Stub domains hanging off each transit node.
    pub stub_domains_per_transit: usize,
    /// Nodes per stub domain.
    pub stub_nodes_per_domain: usize,
    /// Probability of each possible extra intra-stub edge beyond the
    /// spanning tree.
    pub stub_extra_edge_prob: f64,
    /// Extra random chords inside each transit domain ring.
    pub transit_extra_chords: usize,
    /// Extra random inter-domain links beyond the domain ring.
    pub inter_domain_extra_links: usize,
    /// Latency of intra-stub edges.
    pub intra_stub_latency: LatencyRange,
    /// Latency of stub-to-transit access edges.
    pub stub_transit_latency: LatencyRange,
    /// Latency of edges inside a transit domain.
    pub intra_transit_latency: LatencyRange,
    /// Latency of edges between transit domains.
    pub inter_transit_latency: LatencyRange,
}

impl TransitStubConfig {
    /// The paper's simulation scale: ≈4096 nodes.
    ///
    /// 4 transit domains × 8 transit nodes = 32 core nodes; each transit node
    /// carries 4 stub domains × 32 nodes = 4096 stub nodes; 4128 total.
    pub fn paper_scale() -> Self {
        Self {
            transit_domains: 4,
            transit_nodes_per_domain: 8,
            stub_domains_per_transit: 4,
            stub_nodes_per_domain: 32,
            stub_extra_edge_prob: 0.04,
            transit_extra_chords: 4,
            inter_domain_extra_links: 2,
            intra_stub_latency: LatencyRange { min: 1.0, max: 5.0 },
            stub_transit_latency: LatencyRange { min: 5.0, max: 20.0 },
            intra_transit_latency: LatencyRange { min: 10.0, max: 40.0 },
            inter_transit_latency: LatencyRange { min: 50.0, max: 150.0 },
        }
    }

    /// A small topology (≈70 nodes) for tests and examples.
    pub fn small() -> Self {
        Self {
            transit_domains: 2,
            transit_nodes_per_domain: 3,
            stub_domains_per_transit: 2,
            stub_nodes_per_domain: 5,
            stub_extra_edge_prob: 0.1,
            transit_extra_chords: 1,
            inter_domain_extra_links: 1,
            intra_stub_latency: LatencyRange { min: 1.0, max: 5.0 },
            stub_transit_latency: LatencyRange { min: 5.0, max: 20.0 },
            intra_transit_latency: LatencyRange { min: 10.0, max: 40.0 },
            inter_transit_latency: LatencyRange { min: 50.0, max: 150.0 },
        }
    }

    /// A wide-area topology shaped like the paper's PlanetLab deployment:
    /// several continents (transit domains) with inter-continental latencies
    /// of 100–300 ms. ≈90 nodes; the prototype experiment samples 30.
    pub fn planetlab_scale() -> Self {
        Self {
            transit_domains: 5,
            transit_nodes_per_domain: 2,
            stub_domains_per_transit: 2,
            stub_nodes_per_domain: 4,
            stub_extra_edge_prob: 0.15,
            transit_extra_chords: 1,
            inter_domain_extra_links: 2,
            intra_stub_latency: LatencyRange { min: 2.0, max: 10.0 },
            stub_transit_latency: LatencyRange { min: 10.0, max: 40.0 },
            intra_transit_latency: LatencyRange { min: 20.0, max: 60.0 },
            inter_transit_latency: LatencyRange { min: 100.0, max: 300.0 },
        }
    }

    /// Total node count this configuration will produce.
    pub fn node_count(&self) -> usize {
        let transit = self.transit_domains * self.transit_nodes_per_domain;
        transit + transit * self.stub_domains_per_transit * self.stub_nodes_per_domain
    }

    /// Generates the topology deterministically from `seed`.
    ///
    /// Node numbering: transit nodes first (domain-major), then stub nodes
    /// grouped by their transit node.
    ///
    /// # Panics
    ///
    /// Panics if any dimension parameter is zero.
    pub fn generate(&self, seed: u64) -> Topology {
        assert!(self.transit_domains > 0, "need at least one transit domain");
        assert!(self.transit_nodes_per_domain > 0, "need transit nodes");
        assert!(self.stub_domains_per_transit > 0, "need stub domains");
        assert!(self.stub_nodes_per_domain > 0, "need stub nodes");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n_transit = self.transit_domains * self.transit_nodes_per_domain;
        let mut topo = Topology::new(self.node_count());

        // --- Intra-transit-domain edges: ring + chords.
        for d in 0..self.transit_domains {
            let base = d * self.transit_nodes_per_domain;
            let k = self.transit_nodes_per_domain;
            if k > 1 {
                for i in 0..k {
                    let u = NodeId((base + i) as u32);
                    let v = NodeId((base + (i + 1) % k) as u32);
                    if u != v && !topo.has_edge(u, v) {
                        topo.add_edge(u, v, self.intra_transit_latency.sample(&mut rng));
                    }
                }
                for _ in 0..self.transit_extra_chords {
                    let a = base + rng.gen_range(0..k);
                    let b = base + rng.gen_range(0..k);
                    if a != b && !topo.has_edge(NodeId(a as u32), NodeId(b as u32)) {
                        topo.add_edge(
                            NodeId(a as u32),
                            NodeId(b as u32),
                            self.intra_transit_latency.sample(&mut rng),
                        );
                    }
                }
            }
        }

        // --- Inter-transit-domain edges: domain ring + random extras.
        if self.transit_domains > 1 {
            for d in 0..self.transit_domains {
                let e = (d + 1) % self.transit_domains;
                if d == e {
                    continue;
                }
                let a = d * self.transit_nodes_per_domain
                    + rng.gen_range(0..self.transit_nodes_per_domain);
                let b = e * self.transit_nodes_per_domain
                    + rng.gen_range(0..self.transit_nodes_per_domain);
                topo.add_edge(
                    NodeId(a as u32),
                    NodeId(b as u32),
                    self.inter_transit_latency.sample(&mut rng),
                );
            }
            for _ in 0..self.inter_domain_extra_links {
                let d = rng.gen_range(0..self.transit_domains);
                let e = rng.gen_range(0..self.transit_domains);
                if d == e {
                    continue;
                }
                let a = d * self.transit_nodes_per_domain
                    + rng.gen_range(0..self.transit_nodes_per_domain);
                let b = e * self.transit_nodes_per_domain
                    + rng.gen_range(0..self.transit_nodes_per_domain);
                if !topo.has_edge(NodeId(a as u32), NodeId(b as u32)) {
                    topo.add_edge(
                        NodeId(a as u32),
                        NodeId(b as u32),
                        self.inter_transit_latency.sample(&mut rng),
                    );
                }
            }
        }

        // --- Stub domains.
        let mut next = n_transit;
        for t in 0..n_transit {
            for _ in 0..self.stub_domains_per_transit {
                let base = next;
                let k = self.stub_nodes_per_domain;
                next += k;
                // Random spanning tree: node i attaches to a random earlier node.
                for i in 1..k {
                    let j = rng.gen_range(0..i);
                    topo.add_edge(
                        NodeId((base + i) as u32),
                        NodeId((base + j) as u32),
                        self.intra_stub_latency.sample(&mut rng),
                    );
                }
                // Extra intra-stub edges.
                for i in 0..k {
                    for j in (i + 1)..k {
                        if rng.gen_bool(self.stub_extra_edge_prob)
                            && !topo.has_edge(NodeId((base + i) as u32), NodeId((base + j) as u32))
                        {
                            topo.add_edge(
                                NodeId((base + i) as u32),
                                NodeId((base + j) as u32),
                                self.intra_stub_latency.sample(&mut rng),
                            );
                        }
                    }
                }
                // Gateway: a random stub node links to the transit node.
                let gw = base + rng.gen_range(0..k);
                topo.add_edge(
                    NodeId(gw as u32),
                    NodeId(t as u32),
                    self.stub_transit_latency.sample(&mut rng),
                );
            }
        }
        topo
    }

    /// Node ids of the transit (core) nodes in a generated topology.
    pub fn transit_nodes(&self) -> Vec<NodeId> {
        (0..(self.transit_domains * self.transit_nodes_per_domain) as u32).map(NodeId).collect()
    }

    /// Node ids of the stub nodes in a generated topology.
    pub fn stub_nodes(&self) -> Vec<NodeId> {
        let n_transit = (self.transit_domains * self.transit_nodes_per_domain) as u32;
        (n_transit..self.node_count() as u32).map(NodeId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::ShortestPathTree;

    #[test]
    fn paper_scale_has_expected_size() {
        let cfg = TransitStubConfig::paper_scale();
        assert_eq!(cfg.node_count(), 4128);
        assert!(cfg.node_count() >= 4096);
    }

    #[test]
    fn generated_topology_is_connected() {
        for seed in [0, 1, 42] {
            let topo = TransitStubConfig::small().generate(seed);
            assert!(topo.is_connected(), "seed {seed} produced a disconnected topology");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TransitStubConfig::small();
        let a = cfg.generate(5);
        let b = cfg.generate(5);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for u in a.nodes() {
            let mut ea: Vec<_> = a.neighbors(u).collect();
            let mut eb: Vec<_> = b.neighbors(u).collect();
            ea.sort_by_key(|x| x.0);
            eb.sort_by_key(|x| x.0);
            assert_eq!(ea.len(), eb.len());
            for (x, y) in ea.iter().zip(&eb) {
                assert_eq!(x.0, y.0);
                assert!((x.1 - y.1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = TransitStubConfig::small();
        let a = cfg.generate(1);
        let b = cfg.generate(2);
        // Edge sets almost surely differ; compare via total latency out of node 0.
        let la: f64 = a.neighbors(NodeId(0)).map(|(_, l)| l).sum();
        let lb: f64 = b.neighbors(NodeId(0)).map(|(_, l)| l).sum();
        assert!((la - lb).abs() > 1e-9);
    }

    #[test]
    fn stub_to_stub_crossing_domains_is_slower_than_intra_stub() {
        let cfg = TransitStubConfig::small();
        let topo = cfg.generate(3);
        let stubs = cfg.stub_nodes();
        // Nodes in the same stub domain (consecutive ids within a block).
        let a = stubs[0];
        let b = stubs[1];
        // A stub from the other transit domain: the last block.
        let z = *stubs.last().unwrap();
        let spt = ShortestPathTree::compute(&topo, a);
        let near = spt.distance(b).unwrap();
        let far = spt.distance(z).unwrap();
        assert!(far > near, "cross-domain distance {far} should exceed intra-stub distance {near}");
    }

    #[test]
    fn planetlab_scale_latencies_reach_intercontinental_range() {
        let cfg = TransitStubConfig::planetlab_scale();
        let topo = cfg.generate(11);
        assert!(topo.is_connected());
        let spt = ShortestPathTree::compute(&topo, NodeId(0));
        let max = topo.nodes().filter_map(|n| spt.distance(n)).fold(0.0, f64::max);
        assert!(max >= 100.0, "expected some ≥100ms path, got {max}");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            /// Any well-formed configuration yields a connected topology of
            /// the advertised size, for any seed.
            #[test]
            fn prop_generated_topologies_are_connected(
                domains in 1usize..4,
                transit in 1usize..4,
                stubs in 1usize..3,
                stub_nodes in 1usize..8,
                seed in 0u64..50,
            ) {
                let cfg = TransitStubConfig {
                    transit_domains: domains,
                    transit_nodes_per_domain: transit,
                    stub_domains_per_transit: stubs,
                    stub_nodes_per_domain: stub_nodes,
                    stub_extra_edge_prob: 0.05,
                    transit_extra_chords: 1,
                    inter_domain_extra_links: 1,
                    intra_stub_latency: LatencyRange { min: 1.0, max: 5.0 },
                    stub_transit_latency: LatencyRange { min: 5.0, max: 20.0 },
                    intra_transit_latency: LatencyRange { min: 10.0, max: 40.0 },
                    inter_transit_latency: LatencyRange { min: 50.0, max: 150.0 },
                };
                let topo = cfg.generate(seed);
                prop_assert_eq!(topo.node_count(), cfg.node_count());
                prop_assert!(topo.is_connected());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one transit domain")]
    fn zero_domains_panics() {
        let mut cfg = TransitStubConfig::small();
        cfg.transit_domains = 0;
        let _ = cfg.generate(0);
    }
}
