//! Undirected latency-weighted topology graph.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a physical network node (router, processor, or source).
///
/// A plain index newtype: cheap to copy, `Display`s as `n<idx>`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a `usize`, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// An undirected graph with non-negative latency weights on edges.
///
/// Node identifiers are dense `0..node_count`. Parallel edges are collapsed
/// to the smaller latency at insertion time.
///
/// # Examples
///
/// ```
/// use cosmos_net::{Topology, NodeId};
///
/// let mut t = Topology::new(3);
/// t.add_edge(NodeId(0), NodeId(1), 5.0);
/// t.add_edge(NodeId(1), NodeId(2), 2.0);
/// assert_eq!(t.edge_count(), 2);
/// assert_eq!(t.neighbors(NodeId(1)).count(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// adjacency[u] = list of (v, latency)
    adjacency: Vec<Vec<(NodeId, f64)>>,
    edge_count: usize,
}

impl Topology {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Self { adjacency: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adjacency.len() as u32).map(NodeId)
    }

    /// Adds an undirected edge with the given latency. If the edge already
    /// exists, keeps the smaller latency (GT-ITM may propose duplicates when
    /// adding random extra edges).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, on a self-loop, or on a
    /// non-positive / non-finite latency.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, latency: f64) {
        assert!(u.index() < self.node_count(), "node {u} out of range");
        assert!(v.index() < self.node_count(), "node {v} out of range");
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(latency.is_finite() && latency > 0.0, "latency must be positive and finite");
        if let Some(slot) = self.adjacency[u.index()].iter_mut().find(|(n, _)| *n == v) {
            slot.1 = slot.1.min(latency);
            let back = self.adjacency[v.index()]
                .iter_mut()
                .find(|(n, _)| *n == u)
                .expect("asymmetric adjacency");
            back.1 = back.1.min(latency);
            return;
        }
        self.adjacency[u.index()].push((v, latency));
        self.adjacency[v.index()].push((u, latency));
        self.edge_count += 1;
    }

    /// Removes the undirected edge `{u, v}`. Returns `false` when the edge
    /// does not exist (out-of-range endpoints included). Used by the broker
    /// network's link-failure handling; experiment topologies themselves
    /// never shrink.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let Some(adj) = self.adjacency.get_mut(u.index()) else { return false };
        let Some(at) = adj.iter().position(|(n, _)| *n == v) else { return false };
        adj.swap_remove(at);
        let back = &mut self.adjacency[v.index()];
        let at = back.iter().position(|(n, _)| *n == u).expect("asymmetric adjacency");
        back.swap_remove(at);
        self.edge_count -= 1;
        true
    }

    /// Detaches node `u` from the graph: removes every incident edge and
    /// returns the former `(neighbor, latency)` pairs, sorted by neighbor id
    /// so callers can replay them deterministically. The node slot itself
    /// persists (ids stay dense); a detached node is simply isolated, which
    /// is how the broker network models a crashed broker. Returns an empty
    /// vector when `u` is out of range or already isolated.
    pub fn remove_node(&mut self, u: NodeId) -> Vec<(NodeId, f64)> {
        let Some(adj) = self.adjacency.get_mut(u.index()) else { return Vec::new() };
        let mut edges = std::mem::take(adj);
        edges.sort_by_key(|(n, _)| *n);
        for &(v, _) in &edges {
            let back = &mut self.adjacency[v.index()];
            let at = back.iter().position(|(n, _)| *n == u).expect("asymmetric adjacency");
            back.swap_remove(at);
        }
        self.edge_count -= edges.len();
        edges
    }

    /// Appends a fresh isolated node and returns its id. Pairs with
    /// [`Topology::remove_node`] for crash/recovery experiments that grow
    /// the broker set back after failures.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        NodeId(self.adjacency.len() as u32 - 1)
    }

    /// Returns `true` if `u` and `v` are directly connected.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adjacency.get(u.index()).is_some_and(|adj| adj.iter().any(|(n, _)| *n == v))
    }

    /// Latency of the direct edge between `u` and `v`, if present.
    pub fn edge_latency(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.adjacency.get(u.index())?.iter().find(|(n, _)| *n == v).map(|(_, l)| *l)
    }

    /// Iterates over `(neighbor, latency)` pairs of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.adjacency[u.index()].iter().copied()
    }

    /// Degree of node `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adjacency[u.index()].len()
    }

    /// Returns `true` if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut visited = 1;
        while let Some(u) = stack.pop() {
            for (v, _) in self.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    visited += 1;
                    stack.push(v);
                }
            }
        }
        visited == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let t = Topology::new(0);
        assert_eq!(t.node_count(), 0);
        assert!(t.is_connected());
    }

    #[test]
    fn add_and_query_edges() {
        let mut t = Topology::new(4);
        t.add_edge(NodeId(0), NodeId(1), 3.0);
        t.add_edge(NodeId(2), NodeId(3), 1.0);
        assert!(t.has_edge(NodeId(1), NodeId(0)));
        assert_eq!(t.edge_latency(NodeId(0), NodeId(1)), Some(3.0));
        assert_eq!(t.edge_latency(NodeId(0), NodeId(2)), None);
        assert!(!t.is_connected());
        t.add_edge(NodeId(1), NodeId(2), 9.0);
        assert!(t.is_connected());
        assert_eq!(t.edge_count(), 3);
    }

    #[test]
    fn duplicate_edge_keeps_min_latency() {
        let mut t = Topology::new(2);
        t.add_edge(NodeId(0), NodeId(1), 5.0);
        t.add_edge(NodeId(0), NodeId(1), 3.0);
        t.add_edge(NodeId(1), NodeId(0), 7.0);
        assert_eq!(t.edge_count(), 1);
        assert_eq!(t.edge_latency(NodeId(0), NodeId(1)), Some(3.0));
        assert_eq!(t.edge_latency(NodeId(1), NodeId(0)), Some(3.0));
    }

    #[test]
    fn remove_edge_round_trips() {
        let mut t = Topology::new(3);
        t.add_edge(NodeId(0), NodeId(1), 3.0);
        t.add_edge(NodeId(1), NodeId(2), 1.0);
        assert!(t.remove_edge(NodeId(1), NodeId(0)));
        assert_eq!(t.edge_count(), 1);
        assert!(!t.has_edge(NodeId(0), NodeId(1)));
        assert!(t.has_edge(NodeId(1), NodeId(2)));
        // Already gone / never existed / out of range: false, no change.
        assert!(!t.remove_edge(NodeId(0), NodeId(1)));
        assert!(!t.remove_edge(NodeId(0), NodeId(2)));
        assert!(!t.remove_edge(NodeId(7), NodeId(0)));
        t.add_edge(NodeId(0), NodeId(1), 3.0);
        assert_eq!(t.edge_count(), 2);
    }

    #[test]
    fn remove_node_detaches_and_round_trips() {
        let mut t = Topology::new(4);
        t.add_edge(NodeId(0), NodeId(1), 3.0);
        t.add_edge(NodeId(1), NodeId(2), 1.0);
        t.add_edge(NodeId(1), NodeId(3), 2.0);
        t.add_edge(NodeId(2), NodeId(3), 4.0);
        let edges = t.remove_node(NodeId(1));
        assert_eq!(edges, vec![(NodeId(0), 3.0), (NodeId(2), 1.0), (NodeId(3), 2.0)]);
        assert_eq!(t.edge_count(), 1);
        assert_eq!(t.degree(NodeId(1)), 0);
        assert!(!t.has_edge(NodeId(0), NodeId(1)));
        assert!(t.has_edge(NodeId(2), NodeId(3)));
        // Node count unchanged: the slot persists, just isolated.
        assert_eq!(t.node_count(), 4);
        // Idempotent on an isolated / out-of-range node.
        assert!(t.remove_node(NodeId(1)).is_empty());
        assert!(t.remove_node(NodeId(9)).is_empty());
        // Replaying the returned edges restores the original graph.
        for (v, lat) in edges {
            t.add_edge(NodeId(1), v, lat);
        }
        assert_eq!(t.edge_count(), 4);
        assert_eq!(t.edge_latency(NodeId(1), NodeId(2)), Some(1.0));
    }

    #[test]
    fn add_node_appends_isolated() {
        let mut t = Topology::new(2);
        t.add_edge(NodeId(0), NodeId(1), 1.0);
        let n = t.add_node();
        assert_eq!(n, NodeId(2));
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.degree(n), 0);
        t.add_edge(n, NodeId(0), 2.0);
        assert!(t.is_connected());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut t = Topology::new(2);
        t.add_edge(NodeId(1), NodeId(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_latency_panics() {
        let mut t = Topology::new(2);
        t.add_edge(NodeId(0), NodeId(1), 0.0);
    }

    #[test]
    fn display_format() {
        assert_eq!(NodeId(7).to_string(), "n7");
    }
}
