//! Role assignment: which physical nodes are data sources, which are stream
//! processors, and which merely route.
//!
//! §4.1: "Among these nodes, 100 nodes are chosen as the data stream sources,
//! and 256 nodes are selected as the stream processors, and the remaining
//! nodes act as the routers." Sources and processors are always stub nodes
//! (GT-ITM semantics: end systems live in stubs; transit nodes are carriers).

use crate::graph::{NodeId, Topology};
use crate::routing::{DistanceMatrix, SptForest};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The role a physical node plays in the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Origin of one or more source streams (has no processing capability —
    /// paper Figure 5(a) gives sources capability 0).
    Source,
    /// A stream processor that can host queries.
    Processor,
    /// Pure packet forwarder.
    Router,
}

/// A topology together with role assignments and precomputed routing state.
///
/// Owns:
/// - a shortest-path tree per source (for Pub/Sub multicast cost),
/// - a shortest-path tree per processor (for result-stream delivery cost),
/// - an endpoint distance matrix over sources ∪ processors (for WEC and
///   coordinator clustering).
#[derive(Debug, Clone)]
pub struct Deployment {
    topology: Topology,
    sources: Vec<NodeId>,
    processors: Vec<NodeId>,
    roles: Vec<Role>,
    source_trees: SptForest,
    processor_trees: SptForest,
    distances: DistanceMatrix,
}

impl Deployment {
    /// Picks `n_sources` sources and `n_processors` processors uniformly at
    /// random among nodes of degree ≥ 1, preferring high node ids (stub
    /// nodes, in transit-stub numbering) for end systems.
    ///
    /// # Panics
    ///
    /// Panics if the topology has fewer than `n_sources + n_processors`
    /// nodes.
    pub fn assign(topology: Topology, n_sources: usize, n_processors: usize, seed: u64) -> Self {
        let n = topology.node_count();
        assert!(
            n >= n_sources + n_processors,
            "topology has {n} nodes; need {} end systems",
            n_sources + n_processors
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Prefer the stub region (upper ids) for end systems when possible;
        // this mirrors GT-ITM, where hosts live in stub domains.
        let mut candidates: Vec<NodeId> = topology.nodes().collect();
        let needed = n_sources + n_processors;
        if candidates.len() > needed * 2 {
            let skip = candidates.len() - candidates.len() * 3 / 4;
            candidates.drain(0..skip.min(candidates.len() - needed));
        }
        candidates.shuffle(&mut rng);
        let sources: Vec<NodeId> = candidates[..n_sources].to_vec();
        let processors: Vec<NodeId> = candidates[n_sources..n_sources + n_processors].to_vec();
        Self::with_roles(topology, sources, processors)
    }

    /// Builds a deployment from explicit role lists.
    ///
    /// # Panics
    ///
    /// Panics if a node appears in both lists or is out of range.
    pub fn with_roles(topology: Topology, sources: Vec<NodeId>, processors: Vec<NodeId>) -> Self {
        let n = topology.node_count();
        let mut roles = vec![Role::Router; n];
        for &s in &sources {
            assert!(s.index() < n, "source {s} out of range");
            roles[s.index()] = Role::Source;
        }
        for &p in &processors {
            assert!(p.index() < n, "processor {p} out of range");
            assert!(roles[p.index()] != Role::Source, "{p} cannot be both source and processor");
            roles[p.index()] = Role::Processor;
        }
        let source_trees = SptForest::compute(&topology, &sources);
        let processor_trees = SptForest::compute(&topology, &processors);
        let endpoints: Vec<NodeId> = sources.iter().chain(processors.iter()).copied().collect();
        let distances = DistanceMatrix::compute(&topology, &endpoints);
        Self { topology, sources, processors, roles, source_trees, processor_trees, distances }
    }

    /// The underlying physical topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Source node ids, in assignment order.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Processor node ids, in assignment order.
    pub fn processors(&self) -> &[NodeId] {
        &self.processors
    }

    /// The role of `node`.
    pub fn role(&self, node: NodeId) -> Role {
        self.roles[node.index()]
    }

    /// Shortest-path tree rooted at a source (for source-stream multicast).
    ///
    /// # Panics
    ///
    /// Panics if `source` is not a source node.
    pub fn source_tree(&self, source: NodeId) -> &crate::routing::ShortestPathTree {
        self.source_trees.tree(source).unwrap_or_else(|| panic!("{source} is not a source"))
    }

    /// Shortest-path tree rooted at a processor (for result delivery).
    ///
    /// # Panics
    ///
    /// Panics if `processor` is not a processor node.
    pub fn processor_tree(&self, processor: NodeId) -> &crate::routing::ShortestPathTree {
        self.processor_trees
            .tree(processor)
            .unwrap_or_else(|| panic!("{processor} is not a processor"))
    }

    /// Endpoint-to-endpoint latency (`d(ni, nj)` in the paper), defined for
    /// sources and processors.
    ///
    /// # Panics
    ///
    /// Panics if either node is a router.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.distances.distance(a, b)
    }

    /// The distance matrix over sources ∪ processors.
    pub fn distances(&self) -> &DistanceMatrix {
        &self.distances
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transit_stub::TransitStubConfig;

    fn small_deployment(seed: u64) -> Deployment {
        let topo = TransitStubConfig::small().generate(seed);
        Deployment::assign(topo, 4, 8, seed)
    }

    #[test]
    fn roles_are_disjoint_and_counted() {
        let dep = small_deployment(1);
        assert_eq!(dep.sources().len(), 4);
        assert_eq!(dep.processors().len(), 8);
        for &s in dep.sources() {
            assert_eq!(dep.role(s), Role::Source);
        }
        for &p in dep.processors() {
            assert_eq!(dep.role(p), Role::Processor);
        }
        let end_systems = dep.sources().len() + dep.processors().len();
        let routers = dep.topology().nodes().filter(|&n| dep.role(n) == Role::Router).count();
        assert_eq!(routers + end_systems, dep.topology().node_count());
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_diagonal() {
        let dep = small_deployment(2);
        let s = dep.sources()[0];
        let p = dep.processors()[0];
        assert!((dep.distance(s, p) - dep.distance(p, s)).abs() < 1e-9);
        assert_eq!(dep.distance(p, p), 0.0);
    }

    #[test]
    fn trees_exist_for_all_end_systems() {
        let dep = small_deployment(3);
        for &s in dep.sources() {
            assert_eq!(dep.source_tree(s).root(), s);
        }
        for &p in dep.processors() {
            assert_eq!(dep.processor_tree(p).root(), p);
        }
    }

    #[test]
    #[should_panic(expected = "is not a source")]
    fn processor_is_not_a_source() {
        let dep = small_deployment(4);
        let p = dep.processors()[0];
        let _ = dep.source_tree(p);
    }

    #[test]
    fn assignment_is_deterministic() {
        let a = small_deployment(9);
        let b = small_deployment(9);
        assert_eq!(a.sources(), b.sources());
        assert_eq!(a.processors(), b.processors());
    }

    #[test]
    #[should_panic(expected = "need")]
    fn too_many_end_systems_panics() {
        let topo = Topology::new(3);
        let _ = Deployment::assign(topo, 2, 2, 0);
    }

    #[test]
    fn explicit_roles_respected() {
        let mut topo = Topology::new(4);
        topo.add_edge(NodeId(0), NodeId(1), 1.0);
        topo.add_edge(NodeId(1), NodeId(2), 1.0);
        topo.add_edge(NodeId(2), NodeId(3), 1.0);
        let dep = Deployment::with_roles(topo, vec![NodeId(0)], vec![NodeId(2), NodeId(3)]);
        assert_eq!(dep.role(NodeId(0)), Role::Source);
        assert_eq!(dep.role(NodeId(1)), Role::Router);
        assert_eq!(dep.distance(NodeId(0), NodeId(3)), 3.0);
    }
}
