//! Optimizer-churn differential suite: the incremental optimizer against
//! the wholesale oracle under randomized workload and topology churn.
//!
//! Every trial drives one [`IncrementalOptimizer`] and the batch
//! [`adapt_wholesale`] oracle through the same interleaving of:
//!
//! - substream **rate bursts** (the sources' periodic rate reports),
//! - per-query **load bursts** (processor CPU-time reports),
//! - query **arrivals** and **departures** (§3.6 online churn),
//! - processor **join**/**leave** (§3.3 dynamic tree maintenance), with
//!   [`CoordinatorTree::check_invariants`] asserted after every change,
//! - **quiet** rounds where nothing changed at all.
//!
//! After every round the two paths must agree *observationally*: the new
//! assignment (exact equality), the migration count, and the moved state
//! (bit-for-bit) — timing is exempt, since it measures the work actually
//! performed and the whole point of the incremental path is to do less of
//! it. Each trial ends with a quiet round and asserts the caches actually
//! fired.
//!
//! `COSMOS_STRESS=1` raises the trial count. A failing trial prints its
//! seed and op index; `COSMOS_ADAPT_TRIAL=<n>` reruns exactly that trial.

use cosmos_core::adaptive::{adapt_wholesale, AdaptConfig};
use cosmos_core::distribute::Distributor;
use cosmos_core::hierarchy::CoordinatorTree;
use cosmos_core::online::OnlineRouter;
use cosmos_core::spec::{Assignment, QuerySpec};
use cosmos_core::{IncrementalOptimizer, StatDelta};
use cosmos_net::{Deployment, NodeId, TransitStubConfig};
use cosmos_pubsub::SubstreamTable;
use cosmos_query::QueryId;
use cosmos_util::rng::rng_for;
use cosmos_util::InterestSet;
use rand::rngs::StdRng;
use rand::Rng;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Substream universe size.
const U: usize = 160;
/// Cluster-size parameter for the coordinator tree.
const K: usize = 2;

fn stress() -> bool {
    std::env::var("COSMOS_STRESS").is_ok_and(|v| v == "1")
}

/// `COSMOS_ADAPT_TRIAL=<n>` replays a single failing trial.
fn trial_override() -> Option<u64> {
    std::env::var("COSMOS_ADAPT_TRIAL").ok().and_then(|v| v.parse().ok())
}

thread_local! {
    /// Op index of the round currently executing, for failure reports.
    static STEP: Cell<u32> = const { Cell::new(0) };
}

fn random_spec(id: u64, rng: &mut StdRng, procs: &[NodeId]) -> QuerySpec {
    let bits = (0..rng.gen_range(2..=4)).map(|_| rng.gen_range(0..U));
    QuerySpec {
        id: QueryId(id),
        interest: InterestSet::from_indices(U, bits),
        load: rng.gen_range(0.5..2.0),
        proxy: procs[rng.gen_range(0..procs.len())],
        result_rate: rng.gen_range(0.1..1.0),
        state_size: rng.gen_range(0.5..4.0),
    }
}

/// The churn world of one trial: mutable statistics, query set, tree, and
/// the live/reserve processor split.
struct World {
    dep: Deployment,
    table: SubstreamTable,
    tree: CoordinatorTree,
    specs: Vec<QuerySpec>,
    current: Assignment,
    live: Vec<NodeId>,
    reserve: Vec<NodeId>,
    next_id: u64,
}

impl World {
    fn new(seed: u64, rng: &mut StdRng) -> Self {
        let topo = TransitStubConfig::small().generate(seed);
        let dep = Deployment::assign(topo, 4, 16, seed);
        let all: Vec<NodeId> = dep.processors().to_vec();
        let live: Vec<NodeId> = all[..12].to_vec();
        let reserve: Vec<NodeId> = all[12..].to_vec();
        let dep_live =
            Deployment::with_roles(dep.topology().clone(), dep.sources().to_vec(), live.clone());
        let tree = CoordinatorTree::build(&dep_live, K);
        let table = SubstreamTable::random(U, 4, 1.0, 10.0, seed);
        let n = rng.gen_range(80..120u64);
        let specs: Vec<QuerySpec> = (0..n).map(|i| random_spec(i, rng, &all)).collect();
        let mut current = Assignment::new();
        for q in &specs {
            current.place(q.id, live[rng.gen_range(0..live.len())]);
        }
        Self { dep, table, tree, specs, current, live, reserve, next_id: n }
    }

    /// Scales a few substream rates, reporting the touched substreams and
    /// every query whose interest covers one.
    fn rate_burst(&mut self, rng: &mut StdRng, opt: &mut IncrementalOptimizer) {
        for _ in 0..rng.gen_range(1..=3) {
            let s = rng.gen_range(0..U);
            let f = rng.gen_range(0.5..2.0);
            self.table.scale_rate(s, f);
            opt.ingest(&StatDelta::RateChanged { substream: s });
            for q in &self.specs {
                if q.interest.contains(s) {
                    opt.ingest(&StatDelta::QueryChanged { id: q.id });
                }
            }
        }
    }

    /// Perturbs a few queries' measured statistics.
    fn load_burst(&mut self, rng: &mut StdRng, opt: &mut IncrementalOptimizer) {
        for _ in 0..rng.gen_range(1..=4) {
            let i = rng.gen_range(0..self.specs.len());
            let q = &mut self.specs[i];
            q.load *= rng.gen_range(0.8..1.25);
            if rng.gen_bool(0.3) {
                q.state_size *= rng.gen_range(0.9..1.1);
            }
            opt.ingest(&StatDelta::QueryChanged { id: q.id });
        }
    }

    /// A new query arrives and is provisionally homed on a live processor
    /// (the adaptation round then re-balances it like any other query).
    fn arrival(&mut self, rng: &mut StdRng, opt: &mut IncrementalOptimizer) {
        let q = random_spec(self.next_id, rng, &self.live);
        self.next_id += 1;
        self.current.place(q.id, self.live[rng.gen_range(0..self.live.len())]);
        opt.ingest(&StatDelta::QueryArrived { id: q.id });
        self.specs.push(q);
    }

    fn departure(&mut self, rng: &mut StdRng, opt: &mut IncrementalOptimizer) {
        if self.specs.len() <= 10 {
            return;
        }
        let i = rng.gen_range(0..self.specs.len());
        let q = self.specs.swap_remove(i);
        self.current.remove(q.id);
        opt.ingest(&StatDelta::QueryDeparted { id: q.id });
    }

    fn join(&mut self, opt: &mut IncrementalOptimizer) {
        let Some(p) = self.reserve.pop() else {
            return;
        };
        self.tree.join(p, 1.0, K, &self.dep);
        self.tree.check_invariants().expect("tree invariants after join");
        self.live.push(p);
        opt.ingest(&StatDelta::ProcessorJoined);
    }

    fn leave(&mut self, rng: &mut StdRng, opt: &mut IncrementalOptimizer) {
        if self.live.len() <= 6 {
            return;
        }
        let i = rng.gen_range(0..self.live.len());
        let p = self.live.swap_remove(i);
        assert!(self.tree.leave(p, K, &self.dep), "{p} should be in the tree");
        self.tree.check_invariants().expect("tree invariants after leave");
        self.reserve.push(p);
        // Re-home queries orphaned by the departure; the next adaptation
        // round redistributes them properly.
        let home = self.live[0];
        let displaced: Vec<QueryId> =
            self.current.iter().filter(|&(_, n)| n == p).map(|(q, _)| q).collect();
        for q in displaced {
            self.current.place(q, home);
        }
        opt.ingest(&StatDelta::ProcessorLeft);
    }

    /// Runs one adaptation round on both paths and asserts observational
    /// equality: assignment, migrations, and moved state — never timing.
    fn round_and_compare(
        &mut self,
        opt: &mut IncrementalOptimizer,
        config: &AdaptConfig,
        seed: u64,
    ) {
        let d = Distributor::new(&self.dep, &self.tree, &self.table);
        let oracle = adapt_wholesale(&d, &self.specs, &self.current, config, seed);
        let inc = opt.round(&d, &self.specs, &self.current);
        assert_eq!(
            inc.assignment, oracle.assignment,
            "incremental assignment diverged from the wholesale oracle"
        );
        assert_eq!(inc.migrations, oracle.migrations, "migration counts diverged");
        assert_eq!(
            inc.moved_state.to_bits(),
            oracle.moved_state.to_bits(),
            "moved state diverged: {} vs {}",
            inc.moved_state,
            oracle.moved_state
        );
        self.current = inc.assignment;
    }
}

fn run_trial(trial: u64) {
    let seed = 0xC05 + trial * 7919;
    let mut rng = rng_for(seed, "optimizer-churn");
    let mut world = World::new(seed, &mut rng);
    let config = AdaptConfig::default();
    let mut opt = IncrementalOptimizer::new(seed, config).expect("default config is valid");

    let rounds = if stress() { 12 } else { 8 };
    for op in 0..rounds {
        STEP.set(op);
        // The last two rounds are quiet so the trial always exercises the
        // all-hit path at least once.
        let kind = if op >= rounds - 2 { 6 } else { rng.gen_range(0..8u32) };
        match kind {
            0 | 1 => world.rate_burst(&mut rng, &mut opt),
            2 => world.load_burst(&mut rng, &mut opt),
            3 => world.arrival(&mut rng, &mut opt),
            4 => world.departure(&mut rng, &mut opt),
            5 => world.join(&mut opt),
            7 => world.leave(&mut rng, &mut opt),
            _ => {} // quiet round
        }
        world.round_and_compare(&mut opt, &config, seed);
    }
    let stats = opt.cache_stats();
    assert!(stats.hier_hits > 0, "caches never fired over a whole trial: {stats:?}");
    assert!(stats.deltas_ingested > 0, "churn schedule produced no deltas");
}

/// ≥20 randomized trials of interleaved statistics churn, query
/// arrivals/departures, and processor joins/leaves: after every round the
/// incremental optimizer must produce the exact assignment, migration
/// count, and moved state of the from-scratch oracle, with tree
/// invariants checked after every topology change. A failing trial
/// reports its seed and op index for one-line reproduction.
#[test]
fn incremental_rounds_match_wholesale_oracle_under_churn() {
    let trials: u64 = if stress() { 96 } else { 24 };
    for trial in 0..trials {
        if trial_override().is_some_and(|t| t != trial) {
            continue;
        }
        if let Err(e) = catch_unwind(AssertUnwindSafe(|| run_trial(trial))) {
            eprintln!(
                "churn trial {trial} failed at op {}; rerun with \
                 COSMOS_ADAPT_TRIAL={trial} cargo test -p cosmos-core --test optimizer_churn",
                STEP.get()
            );
            resume_unwind(e);
        }
    }
}

/// A stat-delta-only schedule (no topology churn) must keep reusing leaf
/// states: the patch path, not just the all-hit path, has to fire.
#[test]
fn stat_delta_rounds_take_the_patch_path() {
    let seed = 4242;
    let mut rng = rng_for(seed, "patch-path");
    let mut world = World::new(seed, &mut rng);
    let config = AdaptConfig::default();
    let mut opt = IncrementalOptimizer::new(seed, config).expect("valid config");
    world.round_and_compare(&mut opt, &config, seed); // warm the caches
    for _ in 0..4 {
        world.load_burst(&mut rng, &mut opt);
        world.round_and_compare(&mut opt, &config, seed);
    }
    let stats = opt.cache_stats();
    assert!(stats.leaf_patches > 0, "load-only churn never took the patch path: {stats:?}");
    assert!(stats.hier_hits > 0, "clean subtrees were never reused: {stats:?}");
}

/// Satellite: an [`OnlineRouter`] seeded from the incrementally-adapted
/// assignment must behave identically to one seeded from the wholesale
/// oracle's — same accounted load, same routing decisions, same insertion
/// outcomes.
#[test]
fn online_router_seeding_is_path_independent() {
    let seed = 9090;
    let mut rng = rng_for(seed, "seed-from");
    let mut world = World::new(seed, &mut rng);
    let config = AdaptConfig::default();
    let mut opt = IncrementalOptimizer::new(seed, config).expect("valid config");

    // A few churn rounds, tracking the wholesale assignment separately.
    let mut wholesale_current = world.current.clone();
    for op in 0..4 {
        match op % 3 {
            0 => world.rate_burst(&mut rng, &mut opt),
            1 => world.load_burst(&mut rng, &mut opt),
            _ => {}
        }
        let d = Distributor::new(&world.dep, &world.tree, &world.table);
        let oracle = adapt_wholesale(&d, &world.specs, &wholesale_current, &config, seed);
        let inc = opt.round(&d, &world.specs, &world.current);
        wholesale_current = oracle.assignment;
        world.current = inc.assignment;
    }

    let mut from_inc = OnlineRouter::new(&world.dep, &world.tree, &world.table, 0.1);
    from_inc.seed_from(&world.specs, &world.current);
    let mut from_whole = OnlineRouter::new(&world.dep, &world.tree, &world.table, 0.1);
    from_whole.seed_from(&world.specs, &wholesale_current);
    assert!(
        (from_inc.total_load() - from_whole.total_load()).abs() < 1e-12,
        "seeded loads diverged: {} vs {}",
        from_inc.total_load(),
        from_whole.total_load()
    );
    // Identical aggregates must produce identical routing decisions for a
    // stream of new arrivals, inserted into both routers in lock-step.
    for i in 0..12 {
        let probe = random_spec(100_000 + i, &mut rng, &world.live);
        assert_eq!(
            from_inc.route_at(world.tree.root(), &probe),
            from_whole.route_at(world.tree.root(), &probe),
            "root routing decision diverged for probe {i}"
        );
        assert_eq!(
            from_inc.insert(&probe),
            from_whole.insert(&probe),
            "insertion landed on different processors for probe {i}"
        );
    }
}
