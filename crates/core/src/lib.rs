//! COSMOS core: the massive-query-distribution middleware of the paper.
//!
//! COSMOS ("COoperated and Self-tuning Management Of Streaming data")
//! distributes continuous queries — in units of whole queries, not
//! operators — across the stream processors of a wide-area system so that
//! (a) processor load stays balanced and (b) the weighted communication
//! cost of the underlying Pub/Sub is minimized (§3.1.1). The problem is
//! modeled as mapping a *query graph* onto a *network graph* (§3.1.2) and
//! solved hierarchically by a tree of coordinators (§3.3).
//!
//! Module map (paper section → module):
//!
//! | Paper | Module |
//! |---|---|
//! | §3.1.2 graph model, WEC (eqn 3.2), load constraint (eqn 3.1) | [`graph`] |
//! | §3.2 substream bit-vector interests | [`spec`] (+ `cosmos_util::InterestSet`) |
//! | §3.3 coordinator tree (clusters of size `[k, 3k−1]`, medians) | [`hierarchy`] |
//! | §3.4 Algorithm 1: query graph coarsening | [`coarsen`] |
//! | §3.5 Algorithm 2: greedy + iterative-refinement graph mapping | [`mapping`] |
//! | §3.5 hierarchical top-down distribution with uncoarsening | [`distribute`] |
//! | §3.6 online insertion of new queries through the tree | [`online`] |
//! | §3.7 Algorithm 3: diffusion-based adaptive redistribution | [`adaptive`] |
//! | §3.8 statistics collection, [`stats::StatDelta`] change stream | [`stats`] |
//! | §3.7/§3.8 delta-driven incremental optimizer (memoized pipeline) | [`incremental`] |
//!
//! The incremental layer sits across the optimizer pipeline: it keeps
//! per-coordinator coarsening states ([`coarsen::CoarsenState`]) and
//! placement memos alive between adaptation rounds, so a round whose
//! [`stats::StatDelta`] stream touched few vertices re-does only the
//! covering subtrees' work while remaining observationally equal to the
//! batch path ([`adaptive::adapt_wholesale`]).
//!
//! # Examples
//!
//! ```
//! use cosmos_core::spec::QuerySpec;
//! use cosmos_core::distribute::Distributor;
//! use cosmos_core::hierarchy::CoordinatorTree;
//! use cosmos_net::{Deployment, TransitStubConfig};
//! use cosmos_pubsub::SubstreamTable;
//! use cosmos_util::InterestSet;
//!
//! let topo = TransitStubConfig::small().generate(7);
//! let dep = Deployment::assign(topo, 3, 6, 7);
//! let tree = CoordinatorTree::build(&dep, 2);
//! let table = SubstreamTable::random(50, 3, 1.0, 10.0, 7);
//! let queries: Vec<QuerySpec> = (0..20)
//!     .map(|i| QuerySpec {
//!         id: cosmos_query::QueryId(i),
//!         interest: InterestSet::from_indices(50, [(i as usize) % 50, (i as usize * 7) % 50]),
//!         load: 1.0,
//!         proxy: dep.processors()[(i as usize) % 6],
//!         result_rate: 1.0,
//!         state_size: 1.0,
//!     })
//!     .collect();
//! let distributor = Distributor::new(&dep, &tree, &table);
//! let outcome = distributor.distribute(&queries, 7);
//! assert_eq!(outcome.assignment.len(), 20);
//! ```

pub mod adaptive;
pub mod coarsen;
pub mod distribute;
pub mod graph;
pub mod hierarchy;
pub mod incremental;
pub mod mapping;
pub mod online;
pub mod spec;
pub mod stats;

pub use graph::{NetworkGraph, QueryGraph};
pub use hierarchy::CoordinatorTree;
pub use incremental::IncrementalOptimizer;
pub use spec::{Assignment, QuerySpec};
pub use stats::StatDelta;
