//! The delta-driven incremental optimizer (PR 10).
//!
//! The batch pipeline re-derives everything from scratch each round:
//! rebuild every leaf query graph, re-coarsen every coordinator, re-run
//! diffusion and refinement over the whole tree. Between rounds, though,
//! most statistics are unchanged — a burst of [`StatDelta`]s touches a few
//! queries on a few processors. [`IncrementalOptimizer`] exploits that by
//! *memoizing* the pipeline per coordinator:
//!
//! - **Phase A (bottom-up)**: each coordinator's coarsening inputs are
//!   fingerprinted. An unchanged fingerprint replays the cached coarse
//!   outputs and Arc-shares the constituents. A changed level-1 leaf whose
//!   query *structure* (membership, interests, proxies) is intact patches
//!   only its dirty vertices into a persistent
//!   [`CoarsenState`](crate::coarsen::CoarsenState) — the lazy-deletion
//!   heaps stay alive across rounds — and replays the collapse, skipping
//!   the quadratic edge construction. Anything else recomputes wholesale.
//! - **Phase B (top-down)**: each subtree's placement decisions are keyed
//!   on a content-deep fingerprint of its work vertices plus the current
//!   homes of its queries; unchanged subtrees splice the previous round's
//!   placements without re-running diffusion or refinement scoring.
//!
//! **Correctness model.** Every per-coordinator computation in the batch
//! path is a pure function of (inputs, per-coordinator derived seed), and
//! since PR 10 all of it is bit-reproducible (ordered adjacency, ordered
//! derived-vertex creation). The caches therefore key on *content
//! fingerprints of the full input*, not on the delta stream:
//! [`IncrementalOptimizer::round`] produces the bit-identical
//! [`AdaptOutcome`] (assignment, migrations, moved state — not timing,
//! which measures the work actually done) as
//! [`adapt_wholesale`](crate::adaptive::adapt_wholesale) with the same
//! fixed seed, which the `optimizer_churn` differential suite pins across
//! randomized churn. [`StatDelta`]s ingested via
//! [`IncrementalOptimizer::ingest`] are bookkeeping hints (surfaced in
//! [`CacheStats`]); an unreported delta is still caught by the
//! fingerprint check and simply costs a cache miss.
//!
//! Topology changes (processor join/leave) bump the
//! [`CoordinatorTree::generation`](crate::hierarchy::CoordinatorTree::generation)
//! counter, which is folded into the environment fingerprint — any change
//! clears every cache and the round falls back to wholesale work.

use crate::adaptive::{adapt_with_caches, AdaptConfig, AdaptOutcome};
use crate::coarsen::CoarsenState;
use crate::distribute::Distributor;
use crate::graph::{QgVertex, VertexKind};
use crate::spec::{Assignment, QuerySpec};
use crate::stats::StatDelta;
use cosmos_net::NodeId;
use cosmos_query::QueryId;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Content fingerprint of a query-graph vertex under the given rates:
/// kind, constituent queries, weight bits, interest (with each interested
/// substream's rate bits), state size, result flows, and tag. Two vertices
/// with equal fingerprints are — modulo 64-bit hash collisions, which this
/// design accepts — interchangeable inputs to coarsening and placement.
pub(crate) fn vertex_raw_fp(v: &QgVertex, rates: &[f64]) -> u64 {
    let mut h = DefaultHasher::new();
    match v.kind {
        VertexKind::Query => 0u8.hash(&mut h),
        VertexKind::Net(n) => {
            1u8.hash(&mut h);
            n.hash(&mut h);
        }
    }
    v.queries.hash(&mut h);
    v.weight.to_bits().hash(&mut h);
    for s in v.interest.iter() {
        s.hash(&mut h);
        rates[s].to_bits().hash(&mut h);
    }
    v.state_size.to_bits().hash(&mut h);
    for &(p, r) in &v.result_flows {
        p.hash(&mut h);
        r.to_bits().hash(&mut h);
    }
    v.tag.hash(&mut h);
    h.finish()
}

/// Full statistics fingerprint of a query spec: everything that feeds its
/// q-vertex and its graph edges.
pub(crate) fn spec_full_fp(spec: &QuerySpec, rates: &[f64]) -> u64 {
    let mut h = DefaultHasher::new();
    spec.id.hash(&mut h);
    for s in spec.interest.iter() {
        s.hash(&mut h);
        rates[s].to_bits().hash(&mut h);
    }
    spec.load.to_bits().hash(&mut h);
    spec.proxy.hash(&mut h);
    spec.result_rate.to_bits().hash(&mut h);
    spec.state_size.to_bits().hash(&mut h);
    h.finish()
}

/// Structural fingerprint of a query spec: id, interest, and proxy — the
/// parts that decide the leaf graph's *edge set* and derived vertices.
/// Statistics (load, rates, result rate, state size) are deliberately
/// excluded so stats-only rounds take the cheap
/// [`CoarsenState::patch_vertex`] path instead of a rebuild.
pub(crate) fn spec_struct_fp(spec: &QuerySpec) -> u64 {
    let mut h = DefaultHasher::new();
    spec.id.hash(&mut h);
    for s in spec.interest.iter() {
        s.hash(&mut h);
    }
    spec.proxy.hash(&mut h);
    h.finish()
}

/// One cached bottom-up result: the coarse outputs a coordinator handed
/// its parent, keyed by the fingerprint of its inputs.
#[derive(Debug)]
struct HierEntry {
    input_fp: u64,
    outputs: Vec<QgVertex>,
    constituents: Arc<Vec<Vec<QgVertex>>>,
    /// Content-deep fingerprint per output vertex (covers the vertex and,
    /// transitively, everything it was coarsened from).
    out_fps: Vec<u64>,
}

/// A level-1 coordinator's persistent coarsening state plus the
/// fingerprints needed to decide patch-vs-rebuild.
#[derive(Debug)]
struct LeafState {
    /// Fold of the member specs' [`spec_struct_fp`]s, in grouping order.
    struct_fp: u64,
    /// Per-member [`spec_full_fp`], aligned with the state's vertex
    /// indices `0..specs.len()`.
    vertex_fps: Vec<u64>,
    state: CoarsenState,
}

/// A coordinator's cached coarse outputs plus its per-child constituent
/// groups, Arc-shared with the cache on a hit.
pub(crate) type CachedOutputs = (Vec<QgVertex>, Arc<Vec<Vec<QgVertex>>>);

/// The phase-A (bottom-up coarsening) memo, consulted by
/// `Distributor::build_hierarchy_graphs` when the incremental optimizer
/// drives a round.
#[derive(Debug, Default)]
pub(crate) struct HierCache {
    entries: HashMap<usize, HierEntry>,
    leaf_states: HashMap<usize, LeafState>,
    /// Per-coordinator output fingerprints of the *current* round, filled
    /// bottom-up (from the cache entry on a hit, from fresh computation on
    /// a miss) so parents can fingerprint their inputs content-deep.
    round_out_fps: HashMap<usize, Vec<u64>>,
    hits: u64,
    misses: u64,
    leaf_patches: u64,
}

impl HierCache {
    /// Starts a round: the previous round's output fingerprints are stale.
    pub(crate) fn begin_round(&mut self) {
        self.round_out_fps.clear();
    }

    /// Drops every cached result (environment changed).
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.leaf_states.clear();
        self.round_out_fps.clear();
    }

    /// This round's per-coordinator output fingerprints (for phase B).
    pub(crate) fn round_out_fps(&self) -> &HashMap<usize, Vec<u64>> {
        &self.round_out_fps
    }

    /// Fingerprint of a level-1 coordinator's inputs: its member specs'
    /// full statistics, in grouping order.
    pub(crate) fn leaf_input_fp(&self, specs: &[&QuerySpec], rates: &[f64]) -> u64 {
        let mut h = DefaultHasher::new();
        b"leaf".hash(&mut h);
        for spec in specs {
            spec_full_fp(spec, rates).hash(&mut h);
        }
        h.finish()
    }

    /// Fingerprint of an internal coordinator's inputs: its children's
    /// output fingerprints for this round, in child order. Level-0
    /// children contribute a marker (they produce no outputs).
    pub(crate) fn internal_input_fp(&self, children: &[usize]) -> u64 {
        let mut h = DefaultHasher::new();
        for &ch in children {
            ch.hash(&mut h);
            match self.round_out_fps.get(&ch) {
                Some(fps) => {
                    1u8.hash(&mut h);
                    fps.hash(&mut h);
                }
                None => 0u8.hash(&mut h),
            }
        }
        h.finish()
    }

    /// Returns the cached outputs when `coord`'s inputs are unchanged,
    /// publishing its output fingerprints for the parent's input check.
    pub(crate) fn lookup(&mut self, coord: usize, input_fp: u64) -> Option<CachedOutputs> {
        match self.entries.get(&coord) {
            Some(e) if e.input_fp == input_fp => {
                self.round_out_fps.insert(coord, e.out_fps.clone());
                self.hits += 1;
                Some((e.outputs.clone(), e.constituents.clone()))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    fn deep_fp(&self, v: &QgVertex, rates: &[f64]) -> u64 {
        match v.tag {
            Some((coord, idx)) => self.round_out_fps[&coord][idx],
            None => vertex_raw_fp(v, rates),
        }
    }

    /// Stores a freshly computed result and derives its content-deep
    /// output fingerprints (children's fingerprints for tagged
    /// constituents, raw content for untagged ones).
    pub(crate) fn insert(
        &mut self,
        coord: usize,
        input_fp: u64,
        outputs: &[QgVertex],
        constituents: &Arc<Vec<Vec<QgVertex>>>,
        rates: &[f64],
    ) {
        let out_fps: Vec<u64> = outputs
            .iter()
            .enumerate()
            .map(|(j, v)| {
                let mut h = DefaultHasher::new();
                vertex_raw_fp(v, rates).hash(&mut h);
                for c in &constituents[j] {
                    self.deep_fp(c, rates).hash(&mut h);
                }
                h.finish()
            })
            .collect();
        self.round_out_fps.insert(coord, out_fps.clone());
        self.entries.insert(
            coord,
            HierEntry {
                input_fp,
                outputs: outputs.to_vec(),
                constituents: constituents.clone(),
                out_fps,
            },
        );
    }

    /// Attempts the cheap leaf path: if `coord` has a live
    /// [`CoarsenState`] and the member structure is unchanged, patches the
    /// statistics-dirty vertices in place and returns the state for
    /// replay. Returns `None` (consuming any stale state) when the leaf
    /// must rebuild from a fresh graph — membership, interest, or proxy
    /// changes, or a patch the state rejects.
    pub(crate) fn patch_leaf(
        &mut self,
        coord: usize,
        specs: &[&QuerySpec],
        rates: &[f64],
        vertex_for: &dyn Fn(&QuerySpec) -> QgVertex,
    ) -> Option<&CoarsenState> {
        let mut ls = self.leaf_states.remove(&coord)?;
        if ls.struct_fp != fold_struct_fps(specs) || ls.vertex_fps.len() != specs.len() {
            return None;
        }
        let mut patches = 0u64;
        for (i, spec) in specs.iter().enumerate() {
            let fp = spec_full_fp(spec, rates);
            if ls.vertex_fps[i] != fp {
                if !ls.state.patch_vertex(i, vertex_for(spec), rates) {
                    return None; // edge set would change: rebuild
                }
                ls.vertex_fps[i] = fp;
                patches += 1;
            }
        }
        ls.state.maybe_compact();
        self.leaf_patches += patches;
        Some(&self.leaf_states.entry(coord).or_insert(ls).state)
    }

    /// Adopts a freshly prepared leaf state for future patch rounds.
    pub(crate) fn store_leaf_state(
        &mut self,
        coord: usize,
        specs: &[&QuerySpec],
        rates: &[f64],
        state: CoarsenState,
    ) {
        let vertex_fps = specs.iter().map(|s| spec_full_fp(s, rates)).collect();
        self.leaf_states
            .insert(coord, LeafState { struct_fp: fold_struct_fps(specs), vertex_fps, state });
    }
}

fn fold_struct_fps(specs: &[&QuerySpec]) -> u64 {
    let mut h = DefaultHasher::new();
    for spec in specs {
        spec_struct_fp(spec).hash(&mut h);
    }
    h.finish()
}

/// A memoized subtree decision: the fingerprint it was computed under
/// and the sorted `(query, processor)` placements to replay on a hit.
pub(crate) type PlacementMemo = (u64, Arc<Vec<(QueryId, NodeId)>>);

/// Persistent storage for the phase-B subtree memo (the per-round view is
/// `adaptive::PlaceCache`).
#[derive(Debug, Default)]
pub(crate) struct PlaceStore {
    /// Per coordinator: (subtree fingerprint, sorted placements).
    pub(crate) entries: HashMap<usize, PlacementMemo>,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
}

impl PlaceStore {
    fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Cumulative cache effectiveness counters (diagnostic; asserted non-zero
/// by the churn suite on quiet rounds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Phase-A coordinator results replayed from cache.
    pub hier_hits: u64,
    /// Phase-A coordinator results recomputed.
    pub hier_misses: u64,
    /// Vertices patched into persistent leaf coarsening states.
    pub leaf_patches: u64,
    /// Phase-B subtrees spliced from cache.
    pub place_hits: u64,
    /// Phase-B subtrees re-decided.
    pub place_misses: u64,
    /// [`StatDelta`]s ingested since construction.
    pub deltas_ingested: u64,
}

/// The delta-driven optimizer: holds the per-coordinator memos across
/// adaptation rounds and a **fixed seed**, so that
/// [`IncrementalOptimizer::round`] is observationally equal to
/// [`adapt_wholesale`](crate::adaptive::adapt_wholesale) with that seed,
/// every round.
///
/// The same deployment, tree, and table must back the [`Distributor`]
/// passed to every round (topology churn through
/// [`CoordinatorTree::join`](crate::hierarchy::CoordinatorTree::join) /
/// [`leave`](crate::hierarchy::CoordinatorTree::leave) is fine — the
/// generation counter invalidates the caches).
#[derive(Debug)]
pub struct IncrementalOptimizer {
    seed: u64,
    config: AdaptConfig,
    /// Fingerprint of the environment the caches were built under; a
    /// mismatch (new tree generation, different knobs) drops them.
    env_fp: Option<u64>,
    hier: HierCache,
    place: PlaceStore,
    deltas_ingested: u64,
}

impl IncrementalOptimizer {
    /// Creates an optimizer with a fixed seed and validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the offending knob's message when `config` fails
    /// [`AdaptConfig::validate`].
    pub fn new(seed: u64, config: AdaptConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Self {
            seed,
            config,
            env_fp: None,
            hier: HierCache::default(),
            place: PlaceStore::default(),
            deltas_ingested: 0,
        })
    }

    /// The fixed seed every round runs under.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The adaptation configuration.
    pub fn config(&self) -> &AdaptConfig {
        &self.config
    }

    /// Ingests one statistics delta. Deltas are *hints*: correctness comes
    /// from the fingerprint checks in [`IncrementalOptimizer::round`], so
    /// an over- or under-reported stream only shifts how much work the
    /// next round reuses, never what it answers.
    pub fn ingest(&mut self, _delta: &StatDelta) {
        self.deltas_ingested += 1;
    }

    /// Runs one adaptation round, reusing every cached result whose
    /// inputs are fingerprint-unchanged. Produces the identical
    /// assignment, migration count, and moved state as
    /// [`adapt_wholesale`](crate::adaptive::adapt_wholesale) called with
    /// this optimizer's seed and config (timing differs: it measures the
    /// work actually performed).
    ///
    /// # Panics
    ///
    /// Panics if a query in `specs` is missing from `current` or placed on
    /// a processor unknown to the tree.
    pub fn round(
        &mut self,
        d: &Distributor<'_>,
        specs: &[QuerySpec],
        current: &Assignment,
    ) -> AdaptOutcome {
        let fp = env_fp(d, &self.config, self.seed);
        if self.env_fp != Some(fp) {
            self.hier.clear();
            self.place.clear();
            self.env_fp = Some(fp);
        }
        adapt_with_caches(
            d,
            specs,
            current,
            &self.config,
            self.seed,
            Some((&mut self.hier, &mut self.place)),
        )
    }

    /// Cumulative cache effectiveness counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hier_hits: self.hier.hits,
            hier_misses: self.hier.misses,
            leaf_patches: self.hier.leaf_patches,
            place_hits: self.place.hits,
            place_misses: self.place.misses,
            deltas_ingested: self.deltas_ingested,
        }
    }
}

/// Everything outside the per-round inputs that the pipeline's output
/// depends on: the seed, the tree's structural generation and shape, and
/// every optimizer knob — except `scoring_threads`, which provably cannot
/// change the output (pure order-preserving map).
fn env_fp(d: &Distributor<'_>, config: &AdaptConfig, seed: u64) -> u64 {
    let mut h = DefaultHasher::new();
    seed.hash(&mut h);
    d.tree.generation().hash(&mut h);
    d.tree.len().hash(&mut h);
    d.tree.root().hash(&mut h);
    d.universe().hash(&mut h);
    let dc = &d.config;
    dc.vmax.hash(&mut h);
    dc.full_pairwise_limit.hash(&mut h);
    dc.candidates_per_substream.hash(&mut h);
    dc.top_overlap_edges.hash(&mut h);
    dc.overlap_edges.hash(&mut h);
    dc.per_level_alpha.hash(&mut h);
    dc.map.alpha.to_bits().hash(&mut h);
    dc.map.max_outer.hash(&mut h);
    config.x_fraction.to_bits().hash(&mut h);
    config.fill_fraction.to_bits().hash(&mut h);
    config.max_moves_factor.hash(&mut h);
    config.min_improvement.to_bits().hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_util::InterestSet;

    const U: usize = 64;

    fn spec(id: u64, bits: &[usize], load: f64) -> QuerySpec {
        QuerySpec {
            id: QueryId(id),
            interest: InterestSet::from_indices(U, bits.iter().copied()),
            load,
            proxy: NodeId(9),
            result_rate: 0.5,
            state_size: 2.0,
        }
    }

    #[test]
    fn full_fp_tracks_stats_struct_fp_does_not() {
        let rates = vec![1.5; U];
        let a = spec(1, &[3, 7], 1.0);
        let mut b = a.clone();
        assert_eq!(spec_full_fp(&a, &rates), spec_full_fp(&b, &rates));
        assert_eq!(spec_struct_fp(&a), spec_struct_fp(&b));
        b.load = 2.0;
        assert_ne!(spec_full_fp(&a, &rates), spec_full_fp(&b, &rates), "load is a statistic");
        assert_eq!(spec_struct_fp(&a), spec_struct_fp(&b), "load is not structure");
        let mut rates2 = rates.clone();
        rates2[3] = 4.0;
        assert_ne!(spec_full_fp(&a, &rates), spec_full_fp(&a, &rates2), "interested rate moved");
        let mut c = a.clone();
        c.interest.insert(20);
        assert_ne!(spec_struct_fp(&a), spec_struct_fp(&c), "interest is structure");
        let mut p = a.clone();
        p.proxy = NodeId(10);
        assert_ne!(spec_struct_fp(&a), spec_struct_fp(&p), "proxy is structure");
    }

    #[test]
    fn uninterested_rate_changes_leave_full_fp_alone() {
        let rates = vec![1.0; U];
        let a = spec(4, &[1, 2], 1.0);
        let mut rates2 = rates.clone();
        rates2[50] = 9.0;
        assert_eq!(spec_full_fp(&a, &rates), spec_full_fp(&a, &rates2));
    }

    #[test]
    fn constructor_rejects_invalid_config() {
        let bad = AdaptConfig { scoring_threads: 0, ..AdaptConfig::default() };
        let err = IncrementalOptimizer::new(1, bad).unwrap_err();
        assert!(err.contains("scoring_threads"), "error should name the knob: {err}");
        let bad = AdaptConfig { x_fraction: f64::NAN, ..AdaptConfig::default() };
        assert!(IncrementalOptimizer::new(1, bad).unwrap_err().contains("x_fraction"));
        assert!(IncrementalOptimizer::new(1, AdaptConfig::default()).is_ok());
    }

    #[test]
    fn ingest_counts_deltas() {
        let mut opt = IncrementalOptimizer::new(7, AdaptConfig::default()).unwrap();
        opt.ingest(&StatDelta::RateChanged { substream: 3 });
        opt.ingest(&StatDelta::QueryChanged { id: QueryId(1) });
        assert_eq!(opt.cache_stats().deltas_ingested, 2);
    }
}
