//! Hierarchical initial query distribution (§3.5) and the graph-building
//! machinery shared by the online and adaptive algorithms.
//!
//! Bottom-up, every level-1 coordinator builds a query graph from the raw
//! queries of its processors' users, coarsens it to `vmax` vertices
//! (Algorithm 1), tags the coarse vertices with its own identity, and
//! submits them to its parent; parents combine children's submissions and
//! repeat. Top-down, each coordinator maps its (coarse) query graph onto
//! its children with Algorithm 2 and sends each child its share,
//! *uncoarsened one level* — using the vertex tags to retrieve constituent
//! vertices from their originating coordinator, exactly as §3.5 describes.
//!
//! Scalability note (documented substitution): the paper never says how the
//! centralized baseline builds overlap edges among 60 000 queries — full
//! pairwise bit-vector ANDs are quadratic. Above
//! [`DistConfig::full_pairwise_limit`] vertices we sparsify: an inverted
//! index over substreams proposes candidate pairs (queries sharing a hot
//! substream), whose overlaps are then computed exactly. Sharing-heavy
//! pairs co-occur in many substream lists, so the heavy edges — the ones
//! coarsening and mapping act on — survive.

use crate::coarsen::{coarsen_wholesale, CoarsenState, Coarsened};
use crate::graph::{NetVertex, NetworkGraph, QgVertex, QueryGraph, VertexKind};
use crate::hierarchy::CoordinatorTree;
use crate::incremental::HierCache;
use crate::mapping::{map_graph, MapConfig, MappingResult};
use crate::spec::{Assignment, QuerySpec};
use cosmos_net::{Deployment, NodeId};
use cosmos_pubsub::SubstreamTable;
use cosmos_util::rng::derive_seed_indexed;
use cosmos_util::InterestSet;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Tuning knobs for the distribution machinery.
#[derive(Debug, Clone, Copy)]
pub struct DistConfig {
    /// Coarsening threshold `vmax` (§3.4).
    pub vmax: usize,
    /// Up to this many queryful vertices, overlap edges are exact pairwise;
    /// beyond it, the inverted-index sparsification kicks in.
    pub full_pairwise_limit: usize,
    /// Candidate-list cap per substream for the sparsified path.
    pub candidates_per_substream: usize,
    /// Overlap edges kept per vertex on the sparsified path (its top
    /// co-occurring partners).
    pub top_overlap_edges: usize,
    /// Include query-query overlap edges at all (§3.1.2's Pub/Sub-aware
    /// term). Disabled only by the ablation study.
    pub overlap_edges: bool,
    /// Spread the load tolerance across tree levels
    /// (`(1+α)^(1/height) − 1` per level). Disabled only by the ablation
    /// study (which then re-applies α at every level and compounds).
    pub per_level_alpha: bool,
    /// Mapping parameters (α etc.).
    pub map: MapConfig,
}

impl Default for DistConfig {
    fn default() -> Self {
        Self {
            vmax: 64,
            full_pairwise_limit: 2048,
            candidates_per_substream: 16,
            top_overlap_edges: 12,
            overlap_edges: true,
            per_level_alpha: true,
            map: MapConfig::default(),
        }
    }
}

impl DistConfig {
    /// Checks every knob, naming the offending one on failure.
    /// Mirrors the `FaultParams::validate` house pattern.
    pub fn validate(&self) -> Result<(), String> {
        if self.vmax == 0 {
            return Err("vmax must be at least 1".into());
        }
        if self.candidates_per_substream == 0 {
            return Err("candidates_per_substream must be at least 1".into());
        }
        if self.top_overlap_edges == 0 {
            return Err("top_overlap_edges must be at least 1".into());
        }
        self.map.validate()
    }
}

/// Timing of a distribution run, mirroring Figure 6(b)'s two metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistTiming {
    /// Begin-to-end time with same-level coordinators running in parallel
    /// (critical path through the tree).
    pub response: Duration,
    /// Total CPU time summed over all coordinators.
    pub total: Duration,
}

/// The outcome of a distribution run.
#[derive(Debug, Clone)]
pub struct DistOutcome {
    /// Query → processor placement.
    pub assignment: Assignment,
    /// Response/total running time.
    pub timing: DistTiming,
}

/// Shared context: deployment + coordinator tree + substream table.
#[derive(Debug)]
pub struct Distributor<'a> {
    pub(crate) dep: &'a Deployment,
    pub(crate) tree: &'a CoordinatorTree,
    pub(crate) table: &'a SubstreamTable,
    /// Per-source substream sets (interest of source n-vertices).
    pub(crate) source_sets: Vec<InterestSet>,
    /// Configuration.
    pub config: DistConfig,
}

impl<'a> Distributor<'a> {
    /// Couples a deployment, its coordinator tree, and the substream table.
    pub fn new(dep: &'a Deployment, tree: &'a CoordinatorTree, table: &'a SubstreamTable) -> Self {
        Self::with_config(dep, tree, table, DistConfig::default())
    }

    /// As [`Distributor::new`] with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails [`DistConfig::validate`] — a
    /// misconfigured optimizer must fail loudly at construction, not
    /// produce silently degenerate placements.
    pub fn with_config(
        dep: &'a Deployment,
        tree: &'a CoordinatorTree,
        table: &'a SubstreamTable,
        config: DistConfig,
    ) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid DistConfig: {e}");
        }
        let universe = table.len();
        let mut source_sets = vec![InterestSet::new(universe); dep.sources().len()];
        for s in 0..universe {
            source_sets[table.source_index(s)].insert(s);
        }
        Self { dep, tree, table, source_sets, config }
    }

    /// The substream universe size.
    pub fn universe(&self) -> usize {
        self.table.len()
    }

    /// The per-level load tolerance: deviations compound multiplicatively
    /// down the coordinator tree, so each level gets
    /// `(1 + α)^(1/height) − 1` and the end-to-end slack stays ≈ α.
    pub(crate) fn level_alpha(&self) -> f64 {
        if !self.config.per_level_alpha {
            return self.config.map.alpha;
        }
        let h = self.tree.height().max(1) as f64;
        (1.0 + self.config.map.alpha).powf(1.0 / h) - 1.0
    }

    /// Builds a q-vertex for one query spec.
    pub(crate) fn vertex_for(&self, spec: &QuerySpec) -> QgVertex {
        QgVertex::for_query(
            spec.id,
            spec.interest.clone(),
            spec.load,
            spec.proxy,
            spec.result_rate,
            spec.state_size,
        )
    }

    /// Assembles a query graph from queryful vertices: derives the pure
    /// n-vertices (sources with any requested substream, proxies with any
    /// result flow) and computes all edges.
    pub(crate) fn graph_from_vertices(&self, mut vertices: Vec<QgVertex>, seed: u64) -> QueryGraph {
        let rates = self.table.rates();
        let n_query = vertices.len();
        let universe = self.universe();

        // Which network nodes already have a (mixed) Net vertex?
        let mut existing_net: HashMap<NodeId, usize> = HashMap::new();
        for (i, v) in vertices.iter().enumerate() {
            if let Some(node) = v.net_node() {
                existing_net.insert(node, i);
            }
        }

        // Per-vertex, per-source requested rate (single pass over interests).
        let mut source_rates: Vec<HashMap<usize, f64>> = Vec::with_capacity(n_query);
        for v in &vertices {
            let mut acc: HashMap<usize, f64> = HashMap::new();
            for s in v.interest.iter() {
                *acc.entry(self.table.source_index(s)).or_insert(0.0) += rates[s];
            }
            source_rates.push(acc);
        }

        // Derive pure source vertices, in sorted source order per vertex:
        // derived-vertex indices must not depend on hash iteration order,
        // or rebuilt graphs would not be bit-reproducible and the
        // incremental optimizer's memoization would be unsound.
        let mut source_vertex: HashMap<usize, usize> = HashMap::new();
        for acc in &source_rates {
            let mut srcs: Vec<usize> = acc.keys().copied().collect();
            srcs.sort_unstable();
            for src in srcs {
                let node = self.dep.sources()[src];
                if existing_net.contains_key(&node) || source_vertex.contains_key(&src) {
                    continue;
                }
                source_vertex.insert(src, vertices.len());
                vertices.push(QgVertex::for_net(node, self.source_sets[src].clone()));
            }
        }
        // Derive pure proxy vertices.
        let mut proxy_vertex: HashMap<NodeId, usize> = HashMap::new();
        for i in 0..n_query {
            for (p, _) in vertices[i].result_flows.clone() {
                if existing_net.contains_key(&p) || proxy_vertex.contains_key(&p) {
                    continue;
                }
                proxy_vertex.insert(p, vertices.len());
                vertices.push(QgVertex::for_net(p, InterestSet::new(universe)));
            }
        }

        let mut graph = QueryGraph::new(vertices);

        // Source edges.
        for (i, acc) in source_rates.iter().enumerate() {
            for (&src, &rate) in acc {
                let node = self.dep.sources()[src];
                let j = existing_net
                    .get(&node)
                    .copied()
                    .or_else(|| source_vertex.get(&src).copied())
                    .expect("source vertex derived above");
                if i != j {
                    graph.set_edge(i, j, graph.edge(i, j) + rate);
                }
            }
        }

        // Proxy (result-flow) edges.
        for i in 0..n_query {
            let flows = graph.vertices[i].result_flows.clone();
            let own = graph.vertices[i].net_node();
            for (p, rate) in flows {
                if own == Some(p) {
                    continue;
                }
                let j = existing_net
                    .get(&p)
                    .copied()
                    .or_else(|| proxy_vertex.get(&p).copied())
                    .expect("proxy vertex derived above");
                if i != j {
                    graph.set_edge(i, j, graph.edge(i, j) + rate);
                }
            }
        }

        // Overlap edges among queryful vertices.
        if !self.config.overlap_edges {
            // Ablation: no Pub/Sub-sharing term in the query graph.
        } else if n_query <= self.config.full_pairwise_limit {
            for i in 0..n_query {
                for j in (i + 1)..n_query {
                    let w = graph.vertices[i]
                        .interest
                        .weighted_overlap(&graph.vertices[j].interest, rates);
                    if w > 0.0 {
                        graph.set_edge(i, j, graph.edge(i, j) + w);
                    }
                }
            }
        } else {
            self.sparsified_overlap_edges(&mut graph, n_query, seed);
        }
        graph
    }

    /// Inverted-index candidate generation for overlap edges (see module
    /// docs): every vertex counts its co-occurrences with the (capped)
    /// per-substream candidate lists and keeps exact-weighted edges to its
    /// top co-occurring partners — the heavy edges that coarsening and
    /// mapping act on.
    fn sparsified_overlap_edges(&self, graph: &mut QueryGraph, n_query: usize, seed: u64) {
        let rates = self.table.rates();
        let cap = self.config.candidates_per_substream.max(2);
        let top_e = self.config.top_overlap_edges.max(1);
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); self.universe()];
        let mut order: Vec<usize> = (0..n_query).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        for &i in &order {
            for s in graph.vertices[i].interest.iter() {
                if lists[s].len() < cap {
                    lists[s].push(i as u32);
                }
            }
        }
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for i in 0..n_query {
            counts.clear();
            for s in graph.vertices[i].interest.iter() {
                for &j in &lists[s] {
                    if j as usize != i {
                        *counts.entry(j).or_insert(0) += 1;
                    }
                }
            }
            let mut partners: Vec<(u32, u32)> = counts.iter().map(|(&j, &c)| (c, j)).collect();
            partners.sort_unstable_by(|a, b| b.cmp(a));
            for &(_, j) in partners.iter().take(top_e) {
                let j = j as usize;
                if graph.edge(i, j) > 0.0 {
                    continue;
                }
                let w =
                    graph.vertices[i].interest.weighted_overlap(&graph.vertices[j].interest, rates);
                if w > 0.0 {
                    graph.set_edge(i, j, w);
                }
            }
        }
    }

    /// The network graph at coordinator `coord`: targets = its children
    /// (represented by their medians, weighted by aggregate capability),
    /// anchors = the network nodes the query graph references that no child
    /// covers.
    pub(crate) fn network_graph_at(&self, coord: usize, qg: &QueryGraph) -> NetworkGraph {
        let node = self.tree.node(coord);
        let targets: Vec<NetVertex> = node
            .children
            .iter()
            .map(|&c| {
                let child = self.tree.node(c);
                NetVertex { node: child.representative, capability: child.capability }
            })
            .collect();
        let mut anchors: Vec<NetVertex> = Vec::new();
        for v in &qg.vertices {
            if let Some(n) = v.net_node() {
                if self.tree.covering_child(coord, n).is_none()
                    && !anchors.iter().any(|a| a.node == n)
                {
                    anchors.push(NetVertex { node: n, capability: 0.0 });
                }
            }
        }
        let dep = self.dep;
        NetworkGraph::build(targets, anchors, |a, b| dep.distance(a, b))
    }

    /// The pin function at `coord`: n-vertices pin to the covering child's
    /// target index or to their anchor.
    pub(crate) fn pin_at<'b>(
        &'b self,
        coord: usize,
        ng: &'b NetworkGraph,
    ) -> impl Fn(&QgVertex) -> Option<usize> + 'b {
        move |v: &QgVertex| {
            let node = v.net_node()?;
            match self.tree.covering_child(coord, node) {
                Some(pos) => Some(pos),
                None => ng.index_of(node),
            }
        }
    }

    /// Maps a graph at one coordinator (Algorithm 2 with this coordinator's
    /// targets/anchors/pins).
    pub(crate) fn map_at(&self, coord: usize, qg: &QueryGraph) -> (NetworkGraph, MappingResult) {
        let ng = self.network_graph_at(coord, qg);
        let result = {
            let pin = self.pin_at(coord, &ng);
            let mut cfg = self.config.map;
            cfg.alpha = self.level_alpha();
            map_graph(qg, &ng, &pin, &cfg)
        };
        (ng, result)
    }

    /// Hierarchical initial distribution (§3.5).
    pub fn distribute(&self, specs: &[QuerySpec], seed: u64) -> DistOutcome {
        let mut assignment = Assignment::new();
        let mut timing = DistTiming::default();
        if specs.is_empty() {
            return DistOutcome { assignment, timing };
        }
        // Trivial deployment: a single processor hosts everything.
        if self.tree.node(self.tree.root()).children.is_empty() {
            let p = self.tree.node(self.tree.root()).representative;
            for s in specs {
                assignment.place(s.id, p);
            }
            return DistOutcome { assignment, timing };
        }

        // ---- Phase A: bottom-up graph construction and coarsening.
        let mut per_coord =
            self.build_hierarchy_graphs(specs, seed, &mut timing, |spec| spec.proxy, None);

        // ---- Phase B: top-down mapping with one-level uncoarsening.
        let root = self.tree.root();
        let root_work = std::mem::take(&mut per_coord.outputs[root]);
        let response = self.assign_down(root, root_work, &per_coord, &mut assignment, &mut timing);
        timing.response += response;
        DistOutcome { assignment, timing }
    }

    /// Centralized baseline: one global graph, mapped directly onto all
    /// processors (the paper's scalability yardstick).
    pub fn distribute_centralized(&self, specs: &[QuerySpec], seed: u64) -> DistOutcome {
        self.centralized_inner(specs, seed, true)
    }

    /// Greedy baseline: the centralized graph with only the greedy phase of
    /// Algorithm 2 (no iterative refinement).
    pub fn distribute_greedy(&self, specs: &[QuerySpec], seed: u64) -> DistOutcome {
        self.centralized_inner(specs, seed, false)
    }

    fn centralized_inner(&self, specs: &[QuerySpec], seed: u64, refine: bool) -> DistOutcome {
        let mut sw = cosmos_util::Stopwatch::new();
        sw.start();
        let vertices: Vec<QgVertex> = specs.iter().map(|s| self.vertex_for(s)).collect();
        let qg = self.graph_from_vertices(vertices, seed);
        let targets: Vec<NetVertex> =
            self.dep.processors().iter().map(|&p| NetVertex { node: p, capability: 1.0 }).collect();
        let mut anchors: Vec<NetVertex> = Vec::new();
        for v in &qg.vertices {
            if let Some(n) = v.net_node() {
                if !self.dep.processors().contains(&n) && !anchors.iter().any(|a| a.node == n) {
                    anchors.push(NetVertex { node: n, capability: 0.0 });
                }
            }
        }
        let dep = self.dep;
        let ng = NetworkGraph::build(targets, anchors, |a, b| dep.distance(a, b));
        let pin = |v: &QgVertex| -> Option<usize> { v.net_node().and_then(|n| ng.index_of(n)) };
        let mut cfg = self.config.map;
        if !refine {
            cfg.max_outer = 0;
        }
        let result = map_graph(&qg, &ng, &pin, &cfg);
        let mut assignment = Assignment::new();
        for (i, v) in qg.vertices.iter().enumerate() {
            let target = result.mapping[i];
            if target < ng.target_count() {
                let node = ng.vertex(target).node;
                for &q in &v.queries {
                    assignment.place(q, node);
                }
            }
        }
        sw.stop();
        let timing = DistTiming { response: sw.elapsed(), total: sw.elapsed() };
        DistOutcome { assignment, timing }
    }

    /// Bottom-up phase shared by initial distribution and adaptation:
    /// `home_of` decides which processor a query is grouped under (proxy
    /// for initial distribution, current placement for adaptation).
    ///
    /// With `cache` present (the incremental optimizer's memo), each
    /// coordinator's inputs are fingerprinted first: an unchanged
    /// fingerprint reuses the cached outputs and Arc-shares the cached
    /// constituents; a changed level-1 coordinator whose query *structure*
    /// is intact patches the dirty vertices of its persistent
    /// [`CoarsenState`] and replays the collapse; everything else
    /// recomputes exactly as the batch path does. `None` is the batch
    /// path, byte-identical to the pre-incremental behavior.
    pub(crate) fn build_hierarchy_graphs(
        &self,
        specs: &[QuerySpec],
        seed: u64,
        timing: &mut DistTiming,
        home_of: impl Fn(&QuerySpec) -> NodeId,
        mut cache: Option<&mut HierCache>,
    ) -> HierarchyGraphs {
        let n_coords = self.tree.len();
        let mut outputs: Vec<Vec<QgVertex>> = vec![Vec::new(); n_coords];
        let mut constituents: Vec<Arc<Vec<Vec<QgVertex>>>> = vec![Arc::default(); n_coords];
        let mut level_time: Vec<Duration> = Vec::new();
        let rates = self.table.rates();

        // Group raw queries by their home processor's level-1 coordinator.
        let mut by_coord: HashMap<usize, Vec<&QuerySpec>> = HashMap::new();
        for spec in specs {
            let home = home_of(spec);
            let leaf = self
                .tree
                .leaf_of(home)
                .unwrap_or_else(|| panic!("query {} homed on unknown processor {home}", spec.id));
            let parent = self.tree.node(leaf).parent.unwrap_or(leaf);
            // Work attached anywhere but an active level-1 coordinator is
            // invisible to the bottom-up pass below and would silently
            // vanish from the output assignment — fail loudly instead.
            assert!(
                self.tree.is_active(parent) && self.tree.node(parent).level == 1,
                "query {} homed on {home}: leaf {leaf} hangs under coordinator {parent}, \
                 which is not an active level-1 cluster (detached tree?)",
                spec.id
            );
            by_coord.entry(parent).or_default().push(spec);
        }
        if let Some(c) = cache.as_deref_mut() {
            c.begin_round();
        }

        for coord in self.tree.internal_bottom_up() {
            let mut sw = cosmos_util::Stopwatch::new();
            sw.start();
            let node = self.tree.node(coord);
            let coarse_seed = derive_seed_indexed(seed, "coarsen", coord as u64);
            let tree = self.tree;
            let cluster_of = move |n: NodeId| -> Option<usize> { tree.covering_child(coord, n) };
            let leaf_specs: Vec<&QuerySpec> = if node.level == 1 {
                by_coord.get(&coord).cloned().unwrap_or_default()
            } else {
                Vec::new()
            };

            if let Some(c) = cache.as_deref_mut() {
                let input_fp = if node.level == 1 {
                    c.leaf_input_fp(&leaf_specs, rates)
                } else {
                    c.internal_input_fp(&node.children)
                };
                if let Some((out, cons)) = c.lookup(coord, input_fp) {
                    outputs[coord] = out;
                    constituents[coord] = cons;
                } else {
                    let (out, cons) = if node.level == 1 {
                        if let Some(state) =
                            c.patch_leaf(coord, &leaf_specs, rates, &|s| self.vertex_for(s))
                        {
                            let co = state.run(self.config.vmax, rates, &cluster_of, coarse_seed);
                            tag_outputs(coord, &co, state.vertices())
                        } else {
                            let fine: Vec<QgVertex> =
                                leaf_specs.iter().map(|s| self.vertex_for(s)).collect();
                            let qg = self.graph_from_vertices(fine, coarse_seed);
                            let state = CoarsenState::prepare(&qg);
                            let co = state.run(self.config.vmax, rates, &cluster_of, coarse_seed);
                            let oc = tag_outputs(coord, &co, state.vertices());
                            c.store_leaf_state(coord, &leaf_specs, rates, state);
                            oc
                        }
                    } else {
                        let fine: Vec<QgVertex> = node
                            .children
                            .iter()
                            .flat_map(|&ch| outputs[ch].iter().cloned())
                            .collect();
                        let qg = self.graph_from_vertices(fine, coarse_seed);
                        let co = coarsen_wholesale(
                            &qg,
                            self.config.vmax,
                            rates,
                            &cluster_of,
                            coarse_seed,
                        );
                        tag_outputs(coord, &co, &qg.vertices)
                    };
                    let cons = Arc::new(cons);
                    c.insert(coord, input_fp, &out, &cons, rates);
                    outputs[coord] = out;
                    constituents[coord] = cons;
                }
            } else {
                let fine: Vec<QgVertex> = if node.level == 1 {
                    leaf_specs.iter().map(|s| self.vertex_for(s)).collect()
                } else {
                    node.children.iter().flat_map(|&ch| outputs[ch].iter().cloned()).collect()
                };
                let qg = self.graph_from_vertices(fine, coarse_seed);
                let co = coarsen_wholesale(&qg, self.config.vmax, rates, &cluster_of, coarse_seed);
                let (out, cons) = tag_outputs(coord, &co, &qg.vertices);
                outputs[coord] = out;
                constituents[coord] = Arc::new(cons);
            }
            sw.stop();
            timing.total += sw.elapsed();
            let level = node.level;
            if level_time.len() < level {
                level_time.resize(level, Duration::ZERO);
            }
            level_time[level - 1] = level_time[level - 1].max(sw.elapsed());
        }
        timing.response += level_time.iter().sum::<Duration>();
        HierarchyGraphs { outputs, constituents }
    }

    /// Top-down assignment with one-level uncoarsening.
    pub(crate) fn assign_down(
        &self,
        coord: usize,
        work: Vec<QgVertex>,
        graphs: &HierarchyGraphs,
        assignment: &mut Assignment,
        timing: &mut DistTiming,
    ) -> Duration {
        let node = self.tree.node(coord);
        if node.level == 0 {
            for v in &work {
                for &q in &v.queries {
                    assignment.place(q, node.representative);
                }
            }
            return Duration::ZERO;
        }
        let mut sw = cosmos_util::Stopwatch::new();
        sw.start();
        let qg = self.graph_from_vertices(work, derive_seed_indexed(0, "down", coord as u64));
        let (ng, result) = self.map_at(coord, &qg);
        // Partition queryful vertices per child, expanding one level.
        let mut per_child: Vec<Vec<QgVertex>> = vec![Vec::new(); node.children.len()];
        for (i, v) in qg.vertices.iter().enumerate() {
            if v.queries.is_empty() {
                continue;
            }
            let target = result.mapping[i];
            if target >= ng.target_count() {
                continue; // anchors never hold queries (see coarsen docs)
            }
            per_child[target].extend(graphs.expand(v));
        }
        sw.stop();
        timing.total += sw.elapsed();
        let own = sw.elapsed();
        let mut child_max = Duration::ZERO;
        for (pos, child_work) in per_child.into_iter().enumerate() {
            let child = node.children[pos];
            let t = self.assign_down(child, child_work, graphs, assignment, timing);
            child_max = child_max.max(t);
        }
        own + child_max
    }
}

/// Tags the queryful coarse vertices with `coord` and collects, per output,
/// its queryful fine constituents. Outputs exclude derived pure n-vertices
/// (the parent re-derives them); constituents keep only queryful fine
/// vertices.
fn tag_outputs(
    coord: usize,
    co: &Coarsened,
    fine: &[QgVertex],
) -> (Vec<QgVertex>, Vec<Vec<QgVertex>>) {
    let mut out = Vec::new();
    let mut cons = Vec::new();
    for (ci, v) in co.graph.vertices.iter().enumerate() {
        if v.queries.is_empty() {
            continue;
        }
        let mut tagged = v.clone();
        tagged.tag = Some((coord, cons.len()));
        out.push(tagged);
        cons.push(
            co.members[ci]
                .iter()
                .filter(|&&fi| !fine[fi].queries.is_empty())
                .map(|&fi| fine[fi].clone())
                .collect::<Vec<QgVertex>>(),
        );
    }
    (out, cons)
}

/// Bottom-up products: per coordinator, its tagged coarse output vertices
/// and the constituents behind each of them. Constituent lists sit behind
/// an [`Arc`] so the incremental optimizer can share unchanged subtrees
/// across rounds without cloning.
#[derive(Debug)]
pub(crate) struct HierarchyGraphs {
    pub outputs: Vec<Vec<QgVertex>>,
    pub constituents: Vec<Arc<Vec<Vec<QgVertex>>>>,
}

impl HierarchyGraphs {
    /// Expands a vertex one level via its tag ("retrieved from the
    /// corresponding coordinator"); untagged (raw) vertices expand to
    /// themselves.
    pub fn expand(&self, v: &QgVertex) -> Vec<QgVertex> {
        match v.tag {
            Some((coord, idx)) => self.constituents[coord][idx].clone(),
            None => vec![v.clone()],
        }
    }
}

/// Sanity check: every vertex kind invariant holds after expansion.
#[allow(dead_code)]
fn debug_assert_queryful(v: &QgVertex) {
    debug_assert!(
        !v.queries.is_empty() || matches!(v.kind, VertexKind::Net(_)),
        "workload vertices must carry queries"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::edge_weight;
    use cosmos_net::TransitStubConfig;
    use cosmos_query::QueryId;
    use cosmos_util::rng::rng_for;
    use rand::Rng;

    const UNIVERSE: usize = 200;

    struct Fixture {
        dep: Deployment,
        table: SubstreamTable,
    }

    fn fixture(seed: u64) -> Fixture {
        let topo = TransitStubConfig::small().generate(seed);
        let dep = Deployment::assign(topo, 4, 8, seed);
        let table = SubstreamTable::random(UNIVERSE, 4, 1.0, 10.0, seed);
        Fixture { dep, table }
    }

    fn specs(fix: &Fixture, n: usize, seed: u64) -> Vec<QuerySpec> {
        let mut rng = rng_for(seed, "test-specs");
        (0..n)
            .map(|i| {
                let k = rng.gen_range(3..10);
                let interest =
                    InterestSet::from_indices(UNIVERSE, (0..k).map(|_| rng.gen_range(0..UNIVERSE)));
                let load = interest.weighted_len(fix.table.rates()) / 10.0;
                QuerySpec {
                    id: QueryId(i as u64),
                    interest,
                    load,
                    proxy: fix.dep.processors()[rng.gen_range(0..8usize)],
                    result_rate: 1.0,
                    state_size: 1.0,
                }
            })
            .collect()
    }

    #[test]
    fn hierarchical_assigns_every_query_to_a_processor() {
        let fix = fixture(1);
        let tree = CoordinatorTree::build(&fix.dep, 2);
        let d = Distributor::new(&fix.dep, &tree, &fix.table);
        let qs = specs(&fix, 60, 2);
        let out = d.distribute(&qs, 3);
        assert_eq!(out.assignment.len(), 60);
        for q in &qs {
            let p = out.assignment.processor_of(q.id).expect("assigned");
            assert!(fix.dep.processors().contains(&p), "{p} is not a processor");
        }
    }

    #[test]
    fn centralized_assigns_and_balances() {
        let fix = fixture(2);
        let tree = CoordinatorTree::build(&fix.dep, 2);
        let d = Distributor::new(&fix.dep, &tree, &fix.table);
        let qs = specs(&fix, 40, 5);
        let out = d.distribute_centralized(&qs, 7);
        assert_eq!(out.assignment.len(), 40);
        let loads = out.assignment.loads(&qs, fix.dep.processors());
        let total: f64 = loads.iter().sum();
        let limit = 1.1 * total / 8.0;
        for l in &loads {
            assert!(*l <= limit + 1e-6, "load {l} exceeds limit {limit}");
        }
    }

    #[test]
    fn greedy_is_no_better_than_refined_centralized() {
        let fix = fixture(3);
        let tree = CoordinatorTree::build(&fix.dep, 2);
        let d = Distributor::new(&fix.dep, &tree, &fix.table);
        let qs = specs(&fix, 50, 9);
        let greedy = d.distribute_greedy(&qs, 11);
        let central = d.distribute_centralized(&qs, 11);
        let cost = |a: &Assignment| -> f64 {
            let model = cosmos_pubsub::TrafficModel::new(&fix.dep, &fix.table);
            let interests = a.interests(&qs, fix.dep.processors(), UNIVERSE);
            let flows = qs.iter().map(|q| (a.processor_of(q.id).unwrap(), q.proxy, q.result_rate));
            model.source_delivery_cost(&interests) + model.result_unicast_cost(flows)
        };
        let cg = cost(&greedy.assignment);
        let cc = cost(&central.assignment);
        assert!(cc <= cg + 1e-6, "refined centralized ({cc}) must not lose to greedy ({cg})");
    }

    #[test]
    fn sparsified_edges_cover_heavy_overlaps() {
        let fix = fixture(4);
        let tree = CoordinatorTree::build(&fix.dep, 2);
        // Force sparsification.
        let config = DistConfig { full_pairwise_limit: 4, ..DistConfig::default() };
        let d = Distributor::with_config(&fix.dep, &tree, &fix.table, config);
        // Ten queries in two heavy-overlap groups.
        let qs: Vec<QuerySpec> = (0..10)
            .map(|i| {
                let base = if i < 5 { 0 } else { 100 };
                QuerySpec {
                    id: QueryId(i),
                    interest: InterestSet::from_indices(UNIVERSE, base..base + 20),
                    load: 1.0,
                    proxy: fix.dep.processors()[0],
                    result_rate: 0.1,
                    state_size: 1.0,
                }
            })
            .collect();
        let vertices: Vec<QgVertex> = qs.iter().map(|s| d.vertex_for(s)).collect();
        let g = d.graph_from_vertices(vertices, 5);
        // Within-group overlap edges must exist.
        let w01 = g.edge(0, 1);
        assert!(w01 > 0.0, "sparsified graph lost the heavy overlap edge");
        // Cross-group overlap must stay zero.
        assert_eq!(g.edge(0, 7), 0.0);
    }

    #[test]
    fn graph_edges_match_edge_weight_formula() {
        let fix = fixture(6);
        let tree = CoordinatorTree::build(&fix.dep, 2);
        let d = Distributor::new(&fix.dep, &tree, &fix.table);
        let qs = specs(&fix, 12, 20);
        let vertices: Vec<QgVertex> = qs.iter().map(|s| d.vertex_for(s)).collect();
        let g = d.graph_from_vertices(vertices, 1);
        for i in 0..g.len() {
            for (j, w) in g.neighbors(i) {
                let expect = edge_weight(&g.vertices[i], &g.vertices[j], fix.table.rates());
                assert!((w - expect).abs() < 1e-9, "edge ({i},{j}) = {w}, formula gives {expect}");
            }
        }
    }

    #[test]
    fn empty_workload_is_fine() {
        let fix = fixture(7);
        let tree = CoordinatorTree::build(&fix.dep, 2);
        let d = Distributor::new(&fix.dep, &tree, &fix.table);
        let out = d.distribute(&[], 0);
        assert!(out.assignment.is_empty());
    }

    #[test]
    fn hierarchical_is_deterministic() {
        let fix = fixture(8);
        let tree = CoordinatorTree::build(&fix.dep, 2);
        let d = Distributor::new(&fix.dep, &tree, &fix.table);
        let qs = specs(&fix, 30, 33);
        let a = d.distribute(&qs, 5);
        let b = d.distribute(&qs, 5);
        for q in &qs {
            assert_eq!(a.assignment.processor_of(q.id), b.assignment.processor_of(q.id));
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            /// Every generated query is assigned exactly once, to a real
            /// processor, under both distribution strategies.
            #[test]
            fn prop_total_assignment(
                n in 1usize..60,
                seed in 0u64..30,
                vmax in 4usize..32,
            ) {
                let fix = fixture(seed % 5);
                let tree = CoordinatorTree::build(&fix.dep, 2);
                let config = DistConfig { vmax, ..DistConfig::default() };
                let d = Distributor::with_config(&fix.dep, &tree, &fix.table, config);
                let qs = specs(&fix, n, seed);
                for out in [d.distribute(&qs, seed), d.distribute_centralized(&qs, seed)] {
                    prop_assert_eq!(out.assignment.len(), n);
                    for q in &qs {
                        let p = out.assignment.processor_of(q.id);
                        prop_assert!(p.is_some());
                        prop_assert!(fix.dep.processors().contains(&p.unwrap()));
                    }
                }
            }

            /// The derived graph never invents or loses interest mass: the
            /// sum of per-vertex interests equals the specs', and every
            /// n-vertex is a known source or proxy.
            #[test]
            fn prop_graph_vertices_are_consistent(n in 1usize..40, seed in 0u64..20) {
                let fix = fixture(1 + seed % 4);
                let tree = CoordinatorTree::build(&fix.dep, 2);
                let d = Distributor::new(&fix.dep, &tree, &fix.table);
                let qs = specs(&fix, n, seed);
                let vertices: Vec<QgVertex> = qs.iter().map(|s| d.vertex_for(s)).collect();
                let g = d.graph_from_vertices(vertices, seed);
                let mut q_count = 0usize;
                for v in &g.vertices {
                    if let Some(node) = v.net_node() {
                        let known = fix.dep.sources().contains(&node)
                            || fix.dep.processors().contains(&node);
                        prop_assert!(known, "n-vertex for unknown node {node}");
                    } else {
                        q_count += v.queries.len();
                    }
                }
                prop_assert_eq!(q_count, n);
            }
        }
    }

    #[test]
    fn hierarchical_beats_naive_on_communication() {
        let fix = fixture(9);
        let tree = CoordinatorTree::build(&fix.dep, 2);
        let d = Distributor::new(&fix.dep, &tree, &fix.table);
        let qs = specs(&fix, 80, 44);
        let hier = d.distribute(&qs, 1);
        // Naive: every query on its proxy.
        let naive: Assignment = qs.iter().map(|q| (q.id, q.proxy)).collect();
        let model = cosmos_pubsub::TrafficModel::new(&fix.dep, &fix.table);
        let cost = |a: &Assignment| {
            let interests = a.interests(&qs, fix.dep.processors(), UNIVERSE);
            let flows = qs.iter().map(|q| (a.processor_of(q.id).unwrap(), q.proxy, q.result_rate));
            model.source_delivery_cost(&interests) + model.result_unicast_cost(flows)
        };
        let ch = cost(&hier.assignment);
        let cn = cost(&naive);
        assert!(ch <= cn * 1.05, "hierarchical ({ch}) should not lose clearly to naive ({cn})");
    }

    #[test]
    fn config_validation_names_the_offending_knob() {
        let bad = DistConfig { vmax: 0, ..DistConfig::default() };
        assert!(bad.validate().unwrap_err().contains("vmax"));
        let bad = DistConfig { candidates_per_substream: 0, ..DistConfig::default() };
        assert!(bad.validate().unwrap_err().contains("candidates_per_substream"));
        let bad = DistConfig { top_overlap_edges: 0, ..DistConfig::default() };
        assert!(bad.validate().unwrap_err().contains("top_overlap_edges"));
    }

    #[test]
    #[should_panic(expected = "invalid DistConfig")]
    fn invalid_config_panics_at_construction() {
        let fix = fixture(10);
        let tree = CoordinatorTree::build(&fix.dep, 2);
        let bad = DistConfig { vmax: 0, ..DistConfig::default() };
        let _ = Distributor::with_config(&fix.dep, &tree, &fix.table, bad);
    }
}
