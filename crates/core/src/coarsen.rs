//! Query-graph coarsening — Algorithm 1 of the paper (§3.4).
//!
//! Repeatedly collapses matched vertex pairs until the graph has at most
//! `vmax` vertices. A vertex prefers the neighbor behind its heaviest edge
//! ("these two vertices are more likely to be mapped to the same vertex in
//! the network graph"). Constraints from the paper:
//!
//! - Two n-vertices merge only when the same child cluster covers both
//!   (they must be pinned to the same mapping target).
//! - Collapsing a q-vertex into an n-vertex yields an n-vertex (pinning is
//!   sticky), inheriting the n-side's cluster.
//!
//! One documented deviation: *anchor* n-vertices — network nodes covered by
//! no child cluster (data sources, remote proxies) — never participate in a
//! collapse at all. The paper only excludes them from n-n matches; letting
//! a q-vertex collapse into a capability-0 anchor would pin query load to
//! an unmappable vertex and make the load constraint unsatisfiable.

use crate::graph::{edge_weight, QgVertex, QueryGraph};
use cosmos_net::NodeId;
use cosmos_util::rng::rng_for;
use rand::seq::SliceRandom;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The result of coarsening: the coarse graph plus, per coarse vertex, the
/// indices of the input vertices it contains.
#[derive(Debug, Clone)]
pub struct Coarsened {
    /// The coarse graph.
    pub graph: QueryGraph,
    /// `members[c]` = input-vertex indices merged into coarse vertex `c`.
    pub members: Vec<Vec<usize>>,
}

/// Which child cluster covers a network node (`clu` in Algorithm 1);
/// `None` is the paper's `unknown`.
pub type ClusterOf<'a> = dyn Fn(NodeId) -> Option<usize> + 'a;

fn clu(v: &QgVertex, cluster_of: &ClusterOf) -> Option<usize> {
    v.net_node().and_then(cluster_of)
}

/// Is this vertex an unmergeable anchor (n-vertex with unknown cluster)?
fn is_anchor(v: &QgVertex, cluster_of: &ClusterOf) -> bool {
    v.is_net() && clu(v, cluster_of).is_none()
}

/// A candidate edge in a vertex's selection heap, ordered max-weight
/// first with ties broken toward the **smaller** neighbor index — exactly
/// the choice the linear reference scan makes, so heap-based selection is
/// output-identical to it.
#[derive(Debug, Clone, PartialEq)]
struct Cand {
    w: f64,
    j: usize,
}

impl Eq for Cand {}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher weight wins; equal weights prefer smaller j.
        self.w.total_cmp(&other.w).then_with(|| other.j.cmp(&self.j))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Pops `heap` down to the best *eligible* neighbor of `u` under lazy
/// deletion: entries whose neighbor died or whose weight no longer mirrors
/// the live adjacency are discarded for good; entries that are merely
/// ineligible **this pass** (already matched, an anchor, a cluster
/// conflict) are stashed and re-pushed, because they may become mergeable
/// in a later pass. Returns the chosen neighbor, if any.
#[allow(clippy::too_many_arguments)]
fn best_candidate(
    heap: &mut BinaryHeap<Cand>,
    adj_u: &std::collections::HashMap<usize, f64>,
    vertices: &[Option<QgVertex>],
    matched: &[bool],
    u_is_net: bool,
    u_clu: Option<usize>,
    cluster_of: &ClusterOf,
    stash: &mut Vec<Cand>,
) -> Option<usize> {
    stash.clear();
    let mut best = None;
    while let Some(cand) = heap.pop() {
        let Some(v_vert) = vertices[cand.j].as_ref() else { continue };
        if !adj_u.get(&cand.j).is_some_and(|w| w.total_cmp(&cand.w).is_eq()) {
            continue; // stale weight: the live entry is elsewhere in the heap
        }
        let eligible = !(matched[cand.j]
            || is_anchor(v_vert, cluster_of)
            || (u_is_net && v_vert.is_net() && u_clu != clu(v_vert, cluster_of)));
        let chosen = eligible.then_some(cand.j);
        stash.push(cand);
        if chosen.is_some() {
            best = chosen;
            break;
        }
    }
    heap.extend(stash.drain(..));
    best
}

/// Pre-collapse coarsening state: the working vertex array, the live
/// adjacency, and the per-vertex lazy-deletion candidate heaps *before*
/// any collapse has run.
///
/// The incremental optimizer keeps one of these alive per level-1
/// coordinator across adaptation rounds. When a round's statistics deltas
/// leave a leaf's query set and interests untouched (only loads, result
/// rates, or substream rates moved), [`CoarsenState::patch_vertex`]
/// re-estimates the dirty vertices' edges in place — pushing fresh heap
/// entries and leaving superseded ones to lazy deletion — and
/// [`CoarsenState::run`] replays the collapse on a clone of the state,
/// skipping the quadratic edge construction a fresh graph build would pay.
/// The result is output-identical to [`coarsen_wholesale`] on the freshly
/// built graph, which the differential tests pin.
#[derive(Debug, Clone)]
pub struct CoarsenState {
    vertices: Vec<QgVertex>,
    adj: Vec<std::collections::HashMap<usize, f64>>,
    heaps: Vec<BinaryHeap<Cand>>,
}

impl CoarsenState {
    /// Captures `input`'s vertices, adjacency, and selection heaps.
    pub fn prepare(input: &QueryGraph) -> Self {
        let n = input.len();
        let adj: Vec<std::collections::HashMap<usize, f64>> =
            (0..n).map(|i| input.neighbors(i).collect()).collect();
        let heaps =
            adj.iter().map(|edges| edges.iter().map(|(&j, &w)| Cand { w, j }).collect()).collect();
        Self { vertices: input.vertices.clone(), adj, heaps }
    }

    /// Number of fine vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Is the state empty?
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The fine vertices, reflecting every patch applied so far.
    pub fn vertices(&self) -> &[QgVertex] {
        &self.vertices
    }

    /// Replaces vertex `i` with `v` and re-estimates all of `i`'s edges
    /// under `rates`, pushing the updated candidates onto both endpoint
    /// heaps; superseded entries fall to lazy deletion during the collapse.
    ///
    /// The caller must not change the vertex's interest or result-flow
    /// *topology*: only statistics (load, rates, state size) may move, so
    /// the live edge set stays put and only weights change. If a
    /// re-estimated weight is no longer positive the edge set *would*
    /// change — the patch is rejected by returning `false`, and the caller
    /// must rebuild the state from a fresh graph.
    pub fn patch_vertex(&mut self, i: usize, v: QgVertex, rates: &[f64]) -> bool {
        self.vertices[i] = v;
        let neighbors: Vec<usize> = self.adj[i].keys().copied().collect();
        for x in neighbors {
            let w = edge_weight(&self.vertices[i], &self.vertices[x], rates);
            if w <= 0.0 {
                return false;
            }
            self.adj[i].insert(x, w);
            self.adj[x].insert(i, w);
            self.heaps[i].push(Cand { w, j: x });
            self.heaps[x].push(Cand { w, j: i });
        }
        true
    }

    /// Rebuilds every heap from the live adjacency when stale entries
    /// dominate (more than 4× the live edge entries). A no-op for
    /// selection semantics — lazy deletion would have skipped the stale
    /// entries anyway — but it bounds the memory a long-lived state
    /// accumulates across many patched rounds.
    pub fn maybe_compact(&mut self) {
        let live: usize = self.adj.iter().map(|a| a.len()).sum();
        let held: usize = self.heaps.iter().map(|h| h.len()).sum();
        if held > 4 * live.max(1) {
            for (i, edges) in self.adj.iter().enumerate() {
                self.heaps[i] = edges.iter().map(|(&j, &w)| Cand { w, j }).collect();
            }
        }
    }

    /// Replays Algorithm 1 on a clone of the state. Output-identical to
    /// [`coarsen_wholesale`] on the equivalent freshly built graph.
    ///
    /// # Panics
    ///
    /// Panics if `vmax == 0`.
    pub fn run(&self, vmax: usize, rates: &[f64], cluster_of: &ClusterOf, seed: u64) -> Coarsened {
        collapse(
            self.vertices.iter().cloned().map(Some).collect(),
            self.adj.clone(),
            self.heaps.clone(),
            vmax,
            rates,
            cluster_of,
            seed,
        )
    }
}

/// Runs Algorithm 1 from scratch until at most `vmax` vertices remain (or
/// no further collapse is possible — e.g. everything left is an anchor).
/// This is the batch path and the differential oracle for the
/// [`CoarsenState`] patch-and-replay path.
///
/// Candidate selection keeps a lazy-deletion binary heap of `(weight,
/// neighbor)` per vertex instead of re-scanning the adjacency per pass:
/// a vertex's best eligible neighbor is a few heap pops (stale entries —
/// dead neighbors, superseded weights — are discarded on sight), and edge
/// re-estimation after a collapse pushes the new weights without touching
/// the old entries. Output-identical to the linear scan (same max-weight,
/// smallest-index tie-break), which the differential test pins.
///
/// Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics if `vmax == 0`.
pub fn coarsen_wholesale(
    input: &QueryGraph,
    vmax: usize,
    rates: &[f64],
    cluster_of: &ClusterOf,
    seed: u64,
) -> Coarsened {
    let n = input.len();
    let vertices: Vec<Option<QgVertex>> = input.vertices.iter().cloned().map(Some).collect();
    let adj: Vec<std::collections::HashMap<usize, f64>> =
        (0..n).map(|i| input.neighbors(i).collect()).collect();
    let heaps: Vec<BinaryHeap<Cand>> =
        adj.iter().map(|edges| edges.iter().map(|(&j, &w)| Cand { w, j }).collect()).collect();
    collapse(vertices, adj, heaps, vmax, rates, cluster_of, seed)
}

/// The shared collapse loop behind [`coarsen_wholesale`] and
/// [`CoarsenState::run`] — one implementation, so the batch path and the
/// patched replay cannot drift.
fn collapse(
    mut vertices: Vec<Option<QgVertex>>,
    mut adj: Vec<std::collections::HashMap<usize, f64>>,
    mut heaps: Vec<BinaryHeap<Cand>>,
    vmax: usize,
    rates: &[f64],
    cluster_of: &ClusterOf,
    seed: u64,
) -> Coarsened {
    assert!(vmax > 0, "vmax must be positive");
    let n = vertices.len();
    let mut stash: Vec<Cand> = Vec::new();
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut alive = n;
    let mut rng = rng_for(seed, "coarsen");

    while alive > vmax {
        let mut matched = vec![false; n];
        let mut order: Vec<usize> = (0..n).filter(|&i| vertices[i].is_some()).collect();
        order.shuffle(&mut rng);
        let mut progress = false;

        for u in order {
            if alive <= vmax {
                break;
            }
            if vertices[u].is_none() || matched[u] {
                continue;
            }
            let u_vert = vertices[u].as_ref().expect("checked alive");
            if is_anchor(u_vert, cluster_of) {
                matched[u] = true;
                continue;
            }
            let u_is_net = u_vert.is_net();
            let u_clu = clu(u_vert, cluster_of);
            // Candidate selection (Algorithm 1, lines 5-7) via the heap.
            let best = best_candidate(
                &mut heaps[u],
                &adj[u],
                &vertices,
                &matched,
                u_is_net,
                u_clu,
                cluster_of,
                &mut stash,
            );
            let Some(v) = best else {
                matched[u] = true;
                continue;
            };

            // Collapse v into u (lines 8-14).
            let v_vert = vertices[v].take().expect("candidate alive");
            let v_members = std::mem::take(&mut members[v]);
            {
                let u_vert = vertices[u].as_mut().expect("u alive");
                u_vert.absorb(&v_vert);
            }
            members[u].extend(v_members);
            // Rewire v's edges onto u.
            let v_edges: Vec<usize> = adj[v].keys().copied().collect();
            for x in v_edges {
                adj[x].remove(&v);
                if x != u {
                    adj[u].entry(x).or_insert(0.0);
                    adj[x].entry(u).or_insert(0.0);
                }
            }
            adj[v].clear();
            heaps[v] = BinaryHeap::new(); // v can never be selected again
            adj[u].remove(&u);
            // Re-estimate every edge of the merged vertex (line 11); new
            // weights are pushed onto both endpoint heaps, superseded
            // entries fall to lazy deletion.
            let neighbors: Vec<usize> = adj[u].keys().copied().collect();
            for x in neighbors {
                let w = edge_weight(
                    vertices[u].as_ref().expect("u alive"),
                    vertices[x].as_ref().expect("neighbor alive"),
                    rates,
                );
                if w > 0.0 {
                    adj[u].insert(x, w);
                    adj[x].insert(u, w);
                    heaps[u].push(Cand { w, j: x });
                    heaps[x].push(Cand { w, j: u });
                } else {
                    adj[u].remove(&x);
                    adj[x].remove(&u);
                }
            }
            matched[u] = true;
            alive -= 1;
            progress = true;
        }
        if !progress {
            break; // nothing mergeable remains
        }
    }

    // Compact into a fresh graph.
    let mut index_map = vec![usize::MAX; n];
    let mut out_vertices = Vec::with_capacity(alive);
    let mut out_members = Vec::with_capacity(alive);
    for i in 0..n {
        if let Some(v) = vertices[i].take() {
            index_map[i] = out_vertices.len();
            out_vertices.push(v);
            out_members.push(std::mem::take(&mut members[i]));
        }
    }
    let mut graph = QueryGraph::new(out_vertices);
    for i in 0..n {
        if index_map[i] == usize::MAX {
            continue;
        }
        for (&j, &w) in &adj[i] {
            if j > i && index_map[j] != usize::MAX {
                graph.set_edge(index_map[i], index_map[j], w);
            }
        }
    }
    Coarsened { graph, members: out_members }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_query::QueryId;
    use cosmos_util::InterestSet;
    use proptest::prelude::*;

    const U: usize = 32;

    /// The pre-heap reference: Algorithm 1 with candidate selection by a
    /// full linear scan of the adjacency. Kept verbatim as the oracle the
    /// heap-based [`coarsen_wholesale`] must be output-identical to.
    fn coarsen_reference(
        input: &QueryGraph,
        vmax: usize,
        rates: &[f64],
        cluster_of: &ClusterOf,
        seed: u64,
    ) -> Coarsened {
        assert!(vmax > 0, "vmax must be positive");
        let n = input.len();
        let mut vertices: Vec<Option<QgVertex>> =
            input.vertices.iter().cloned().map(Some).collect();
        let mut adj: Vec<std::collections::HashMap<usize, f64>> =
            (0..n).map(|i| input.neighbors(i).collect()).collect();
        let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        let mut alive = n;
        let mut rng = rng_for(seed, "coarsen");

        while alive > vmax {
            let mut matched = vec![false; n];
            let mut order: Vec<usize> = (0..n).filter(|&i| vertices[i].is_some()).collect();
            order.shuffle(&mut rng);
            let mut progress = false;

            for u in order {
                if alive <= vmax {
                    break;
                }
                if vertices[u].is_none() || matched[u] {
                    continue;
                }
                let u_vert = vertices[u].as_ref().expect("checked alive");
                if is_anchor(u_vert, cluster_of) {
                    matched[u] = true;
                    continue;
                }
                let u_is_net = u_vert.is_net();
                let u_clu = clu(u_vert, cluster_of);
                let mut best: Option<(usize, f64)> = None;
                for (&j, &w) in &adj[u] {
                    let Some(v_vert) = vertices[j].as_ref() else { continue };
                    if matched[j] || is_anchor(v_vert, cluster_of) {
                        continue;
                    }
                    if u_is_net && v_vert.is_net() && u_clu != clu(v_vert, cluster_of) {
                        continue;
                    }
                    match best {
                        Some((bj, bw)) if w < bw || (w == bw && j > bj) => {}
                        _ => best = Some((j, w)),
                    }
                }
                let Some((v, _)) = best else {
                    matched[u] = true;
                    continue;
                };
                let v_vert = vertices[v].take().expect("candidate alive");
                let v_members = std::mem::take(&mut members[v]);
                vertices[u].as_mut().expect("u alive").absorb(&v_vert);
                members[u].extend(v_members);
                let v_edges: Vec<usize> = adj[v].keys().copied().collect();
                for x in v_edges {
                    adj[x].remove(&v);
                    if x != u {
                        adj[u].entry(x).or_insert(0.0);
                        adj[x].entry(u).or_insert(0.0);
                    }
                }
                adj[v].clear();
                adj[u].remove(&u);
                let neighbors: Vec<usize> = adj[u].keys().copied().collect();
                for x in neighbors {
                    let w = edge_weight(
                        vertices[u].as_ref().expect("u alive"),
                        vertices[x].as_ref().expect("neighbor alive"),
                        rates,
                    );
                    if w > 0.0 {
                        adj[u].insert(x, w);
                        adj[x].insert(u, w);
                    } else {
                        adj[u].remove(&x);
                        adj[x].remove(&u);
                    }
                }
                matched[u] = true;
                alive -= 1;
                progress = true;
            }
            if !progress {
                break;
            }
        }

        let mut index_map = vec![usize::MAX; n];
        let mut out_vertices = Vec::with_capacity(alive);
        let mut out_members = Vec::with_capacity(alive);
        for i in 0..n {
            if let Some(v) = vertices[i].take() {
                index_map[i] = out_vertices.len();
                out_vertices.push(v);
                out_members.push(std::mem::take(&mut members[i]));
            }
        }
        let mut graph = QueryGraph::new(out_vertices);
        for i in 0..n {
            if index_map[i] == usize::MAX {
                continue;
            }
            for (&j, &w) in &adj[i] {
                if j > i && index_map[j] != usize::MAX {
                    graph.set_edge(index_map[i], index_map[j], w);
                }
            }
        }
        Coarsened { graph, members: out_members }
    }

    /// The heap-based selection must coarsen a seeded random graph to
    /// exactly the output the linear-scan reference produces — members,
    /// vertex weights, and edges.
    #[test]
    fn heap_selection_is_output_identical_to_linear_scan() {
        use rand::Rng;
        for seed in 0..12u64 {
            let mut rng = rng_for(seed, "coarsen-heap-diff");
            let rates: Vec<f64> = (0..U).map(|i| 1.0 + (i % 5) as f64).collect();
            let n = rng.gen_range(12..36);
            let vertices: Vec<QgVertex> = (0..n)
                .map(|i| {
                    let bits: Vec<usize> =
                        (0..rng.gen_range(1..5)).map(|_| rng.gen_range(0..U)).collect();
                    if i % 7 == 3 {
                        nv(i as u32, &bits)
                    } else {
                        qv(i as u64, &bits, rng.gen_range(0.5..4.0))
                    }
                })
                .collect();
            let g = with_edges(vertices, &rates);
            // Some n-vertices clustered, some anchors (cluster unknown).
            let cluster_of = |node: NodeId| -> Option<usize> {
                (!node.0.is_multiple_of(3)).then_some((node.0 % 2) as usize)
            };
            let vmax = rng.gen_range(2..10);
            let fast = coarsen_wholesale(&g, vmax, &rates, &cluster_of, seed);
            let slow = coarsen_reference(&g, vmax, &rates, &cluster_of, seed);
            assert_eq!(fast.members, slow.members, "seed {seed}: members diverged");
            assert_eq!(fast.graph.len(), slow.graph.len());
            for i in 0..fast.graph.len() {
                assert_eq!(fast.graph.vertices[i].weight, slow.graph.vertices[i].weight);
                let mut fe: Vec<(usize, f64)> = fast.graph.neighbors(i).collect();
                let mut se: Vec<(usize, f64)> = slow.graph.neighbors(i).collect();
                fe.sort_by_key(|e| e.0);
                se.sort_by_key(|e| e.0);
                assert_eq!(fe, se, "seed {seed}: edges of vertex {i} diverged");
            }
        }
    }

    fn qv(id: u64, bits: &[usize], load: f64) -> QgVertex {
        QgVertex::for_query(
            QueryId(id),
            InterestSet::from_indices(U, bits.iter().copied()),
            load,
            NodeId(100),
            0.1,
            1.0,
        )
    }

    fn nv(node: u32, bits: &[usize]) -> QgVertex {
        QgVertex::for_net(NodeId(node), InterestSet::from_indices(U, bits.iter().copied()))
    }

    /// Builds a graph with exact pairwise edges.
    fn with_edges(vertices: Vec<QgVertex>, rates: &[f64]) -> QueryGraph {
        let mut g = QueryGraph::new(vertices);
        for i in 0..g.len() {
            for j in (i + 1)..g.len() {
                let w = edge_weight(&g.vertices[i], &g.vertices[j], rates);
                g.set_edge(i, j, w);
            }
        }
        g
    }

    #[test]
    fn coarsens_to_vmax() {
        let rates = vec![1.0; U];
        let vertices: Vec<QgVertex> =
            (0..10).map(|i| qv(i, &[i as usize, i as usize + 1], 1.0)).collect();
        let g = with_edges(vertices, &rates);
        let c = coarsen_wholesale(&g, 4, &rates, &|_| None, 7);
        assert!(c.graph.len() <= 4);
        assert_eq!(c.members.iter().map(Vec::len).sum::<usize>(), 10);
    }

    #[test]
    fn weight_and_interest_preserved() {
        let rates = vec![1.0; U];
        let vertices: Vec<QgVertex> =
            (0..12).map(|i| qv(i, &[(i % 6) as usize], (i + 1) as f64)).collect();
        let g = with_edges(vertices, &rates);
        let before_weight = g.total_weight();
        let mut before_union = InterestSet::new(U);
        for v in &g.vertices {
            before_union.union_with(&v.interest);
        }
        let c = coarsen_wholesale(&g, 3, &rates, &|_| None, 1);
        assert!((c.graph.total_weight() - before_weight).abs() < 1e-9);
        let mut after_union = InterestSet::new(U);
        for v in &c.graph.vertices {
            after_union.union_with(&v.interest);
        }
        assert_eq!(before_union, after_union);
    }

    #[test]
    fn heavy_edges_merge_first() {
        let rates = vec![1.0; U];
        // Two heavy pairs {0,1} and {2,3} plus light cross edges. Whichever
        // vertex Algorithm 1 visits first, its max-weight neighbor is its
        // heavy partner, so the outcome is independent of the random order.
        let vertices = vec![
            qv(0, &[0, 1, 2, 3, 4, 20], 1.0),
            qv(1, &[0, 1, 2, 3, 4, 21], 1.0),
            qv(2, &[10, 11, 12, 13, 20], 1.0),
            qv(3, &[10, 11, 12, 13, 21], 1.0),
        ];
        let g = with_edges(vertices, &rates);
        for seed in 0..8 {
            let c = coarsen_wholesale(&g, 2, &rates, &|_| None, seed);
            assert_eq!(c.graph.len(), 2);
            let ok = c.members.iter().any(|m| m.contains(&0) && m.contains(&1) && m.len() == 2);
            assert!(ok, "seed {seed}: heavy pairs should collapse: {:?}", c.members);
        }
    }

    #[test]
    fn n_vertices_of_different_clusters_never_merge() {
        let rates = vec![1.0; U];
        // Two heavily-overlapping net vertices in different clusters.
        let vertices = vec![
            nv(1, &[0, 1, 2, 3]),
            nv(2, &[0, 1, 2, 3]),
            qv(10, &[0, 1], 1.0),
            qv(11, &[2, 3], 1.0),
        ];
        let g = with_edges(vertices, &rates);
        let cluster_of = |n: NodeId| -> Option<usize> { Some(n.0 as usize) };
        let c = coarsen_wholesale(&g, 1, &rates, &cluster_of, 5);
        // Can't reach 1 vertex: the two n-vertices must stay apart.
        assert!(c.graph.len() >= 2);
        for v in &c.graph.vertices {
            if v.is_net() {
                // No coarse vertex may contain both node 1 and node 2.
                let has1 = v.net_node() == Some(NodeId(1));
                let has2 = v.net_node() == Some(NodeId(2));
                assert!(!(has1 && has2));
            }
        }
        let m1 = c.members.iter().find(|m| m.contains(&0)).unwrap();
        assert!(!m1.contains(&1), "n-vertices of different clusters merged");
    }

    #[test]
    fn anchors_are_never_merged() {
        let rates = vec![1.0; U];
        let vertices = vec![
            nv(50, &[0, 1, 2, 3]), // anchor: cluster_of returns None
            qv(1, &[0, 1, 2, 3], 1.0),
            qv(2, &[0, 1, 2], 1.0),
        ];
        let g = with_edges(vertices, &rates);
        let c = coarsen_wholesale(&g, 1, &rates, &|_| None, 9);
        // Anchor survives alone; the two queries may merge.
        assert!(c.graph.len() >= 2);
        let anchor_members =
            c.members.iter().find(|m| m.contains(&0)).expect("anchor still present");
        assert_eq!(anchor_members, &vec![0]);
    }

    #[test]
    fn query_merging_into_covered_net_vertex_pins_it() {
        let rates = vec![1.0; U];
        let vertices = vec![
            nv(7, &[0, 1, 2, 3]), // covered by cluster 0
            qv(1, &[0, 1, 2, 3], 2.0),
        ];
        let g = with_edges(vertices, &rates);
        let c = coarsen_wholesale(&g, 1, &rates, &|_| Some(0), 2);
        assert_eq!(c.graph.len(), 1);
        let v = &c.graph.vertices[0];
        assert!(v.is_net());
        assert_eq!(v.net_node(), Some(NodeId(7)));
        assert_eq!(v.weight, 2.0);
    }

    #[test]
    fn already_small_graph_is_untouched() {
        let rates = vec![1.0; U];
        let g = with_edges(vec![qv(0, &[0], 1.0), qv(1, &[5], 1.0)], &rates);
        let c = coarsen_wholesale(&g, 10, &rates, &|_| None, 0);
        assert_eq!(c.graph.len(), 2);
        assert_eq!(c.members, vec![vec![0], vec![1]]);
    }

    #[test]
    fn deterministic_for_seed() {
        let rates = vec![1.0; U];
        let vertices: Vec<QgVertex> =
            (0..20).map(|i| qv(i, &[(i % 7) as usize, ((i * 3) % 11) as usize], 1.0)).collect();
        let g = with_edges(vertices, &rates);
        let a = coarsen_wholesale(&g, 5, &rates, &|_| None, 42);
        let b = coarsen_wholesale(&g, 5, &rates, &|_| None, 42);
        assert_eq!(a.members, b.members);
    }

    #[test]
    fn prepared_state_replays_identically_to_wholesale() {
        use rand::Rng;
        for seed in 0..8u64 {
            let mut rng = rng_for(seed, "coarsen-state-diff");
            let rates: Vec<f64> = (0..U).map(|i| 1.0 + (i % 4) as f64).collect();
            let n = rng.gen_range(10..30);
            let vertices: Vec<QgVertex> = (0..n)
                .map(|i| {
                    let bits: Vec<usize> =
                        (0..rng.gen_range(1..5)).map(|_| rng.gen_range(0..U)).collect();
                    qv(i as u64, &bits, rng.gen_range(0.5..4.0))
                })
                .collect();
            let g = with_edges(vertices, &rates);
            let state = CoarsenState::prepare(&g);
            let vmax = rng.gen_range(2..8);
            let replay = state.run(vmax, &rates, &|_| None, seed);
            let fresh = coarsen_wholesale(&g, vmax, &rates, &|_| None, seed);
            assert_eq!(replay.members, fresh.members, "seed {seed}: members diverged");
        }
    }

    /// Stats-only deltas: patch the dirty vertices of a long-lived state
    /// and replay the collapse; the output must be bit-identical to
    /// wholesale coarsening of a graph freshly built from the updated
    /// vertices and rates.
    #[test]
    fn patched_state_matches_wholesale_on_fresh_graph() {
        use rand::Rng;
        for seed in 0..8u64 {
            let mut rng = rng_for(seed, "coarsen-patch-diff");
            let rates: Vec<f64> = (0..U).map(|i| 1.0 + (i % 4) as f64).collect();
            let n = rng.gen_range(10..30);
            let mut vertices: Vec<QgVertex> = (0..n)
                .map(|i| {
                    let bits: Vec<usize> =
                        (0..rng.gen_range(1..5)).map(|_| rng.gen_range(0..U)).collect();
                    qv(i as u64, &bits, rng.gen_range(0.5..4.0))
                })
                .collect();
            let g = with_edges(vertices.clone(), &rates);
            let mut state = CoarsenState::prepare(&g);
            // Perturb substream rates and a third of the loads — the kind
            // of delta a StatDelta stream carries between rounds. Rates
            // changed globally, so every vertex counts as dirty.
            let rates2: Vec<f64> = rates
                .iter()
                .enumerate()
                .map(|(i, r)| if i % 3 == 0 { r * rng.gen_range(1.1..2.0) } else { *r })
                .collect();
            for v in vertices.iter_mut() {
                if rng.gen_bool(0.3) {
                    v.weight *= rng.gen_range(0.5..2.0);
                }
            }
            for (i, v) in vertices.iter().enumerate() {
                assert!(state.patch_vertex(i, v.clone(), &rates2), "patch rejected at {i}");
            }
            state.maybe_compact();
            let g2 = with_edges(vertices.clone(), &rates2);
            let vmax = rng.gen_range(2..8);
            let patched = state.run(vmax, &rates2, &|_| None, seed);
            let fresh = coarsen_wholesale(&g2, vmax, &rates2, &|_| None, seed);
            assert_eq!(patched.members, fresh.members, "seed {seed}: members diverged");
            assert_eq!(patched.graph.len(), fresh.graph.len());
            for i in 0..patched.graph.len() {
                assert_eq!(
                    patched.graph.vertices[i].weight.to_bits(),
                    fresh.graph.vertices[i].weight.to_bits(),
                    "seed {seed}: weight of coarse vertex {i} diverged"
                );
                let mut pe: Vec<(usize, u64)> =
                    patched.graph.neighbors(i).map(|(j, w)| (j, w.to_bits())).collect();
                let mut fe: Vec<(usize, u64)> =
                    fresh.graph.neighbors(i).map(|(j, w)| (j, w.to_bits())).collect();
                pe.sort_unstable_by_key(|e| e.0);
                fe.sort_unstable_by_key(|e| e.0);
                assert_eq!(pe, fe, "seed {seed}: edges of coarse vertex {i} diverged");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_members_partition_input(
            n in 2usize..24,
            vmax in 1usize..8,
            seed in 0u64..100,
        ) {
            let rates = vec![1.0; U];
            let vertices: Vec<QgVertex> = (0..n)
                .map(|i| qv(i as u64, &[i % U, (i * 5 + 1) % U], 1.0))
                .collect();
            let g = with_edges(vertices, &rates);
            let c = coarsen_wholesale(&g, vmax, &rates, &|_| None, seed);
            let mut seen: Vec<usize> = c.members.iter().flatten().copied().collect();
            seen.sort_unstable();
            let expect: Vec<usize> = (0..n).collect();
            prop_assert_eq!(seen, expect);
            // Reaches vmax unless the residue is edge-free (Algorithm 1 can
            // only collapse adjacent vertices).
            prop_assert!(
                c.graph.len() <= vmax.max(1) || c.graph.edge_count() == 0,
                "stopped at {} vertices with {} edges (vmax {})",
                c.graph.len(),
                c.graph.edge_count(),
                vmax
            );
        }

        #[test]
        fn prop_edges_consistent_with_vertices(
            n in 2usize..16,
            seed in 0u64..50,
        ) {
            let rates = vec![1.0; U];
            let vertices: Vec<QgVertex> = (0..n)
                .map(|i| qv(i as u64, &[i % U, (i * 3) % U, (i * 7) % U], 1.0))
                .collect();
            let g = with_edges(vertices, &rates);
            let c = coarsen_wholesale(&g, 2, &rates, &|_| None, seed);
            for i in 0..c.graph.len() {
                for (j, w) in c.graph.neighbors(i) {
                    let expect = edge_weight(&c.graph.vertices[i], &c.graph.vertices[j], &rates);
                    prop_assert!((w - expect).abs() < 1e-9,
                        "edge ({i},{j}) weight {w} != recomputed {expect}");
                }
            }
        }
    }
}
