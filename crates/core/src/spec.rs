//! Abstract query specifications for the distribution problem.
//!
//! The distribution layer does not look inside CQL text: what it needs from
//! a query is its *data interest* (which substreams it reads, as a bit
//! vector — §3.2), its estimated *load* (CPU time per unit time on a
//! capability-1 processor — §3.1.1), its *proxy* (the processor its user
//! connected to, where results must be delivered), its result rate, and the
//! size of its operator state (which prices migration — §3.7).

use cosmos_net::NodeId;
use cosmos_query::QueryId;
use cosmos_util::InterestSet;
use std::collections::HashMap;

/// Everything the distribution algorithms need to know about one query.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Unique query identifier.
    pub id: QueryId,
    /// Substreams the query reads.
    pub interest: InterestSet,
    /// Estimated CPU load (per unit time on a capability-1 processor).
    pub load: f64,
    /// The processor acting as the user's proxy (result destination).
    pub proxy: NodeId,
    /// Result stream rate in bytes/second.
    pub result_rate: f64,
    /// Size of the query's operator state (for migration cost).
    pub state_size: f64,
}

impl QuerySpec {
    /// The query's input rate: the summed rates of its interest substreams.
    pub fn input_rate(&self, rates: &[f64]) -> f64 {
        self.interest.weighted_len(rates)
    }
}

/// A placement of queries onto processors.
///
/// # Examples
///
/// ```
/// use cosmos_core::spec::Assignment;
/// use cosmos_net::NodeId;
/// use cosmos_query::QueryId;
///
/// let mut a = Assignment::new();
/// a.place(QueryId(1), NodeId(10));
/// assert_eq!(a.processor_of(QueryId(1)), Some(NodeId(10)));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Assignment {
    map: HashMap<QueryId, NodeId>,
}

impl Assignment {
    /// Creates an empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Places (or re-places) a query on a processor.
    pub fn place(&mut self, query: QueryId, processor: NodeId) {
        self.map.insert(query, processor);
    }

    /// Removes a query from the assignment.
    pub fn remove(&mut self, query: QueryId) -> Option<NodeId> {
        self.map.remove(&query)
    }

    /// The processor hosting `query`, if assigned.
    pub fn processor_of(&self, query: QueryId) -> Option<NodeId> {
        self.map.get(&query).copied()
    }

    /// Number of assigned queries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when no queries are assigned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(query, processor)` pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (QueryId, NodeId)> + '_ {
        self.map.iter().map(|(q, n)| (*q, *n))
    }

    /// Counts queries whose placement differs between `self` and `other`
    /// (queries present in both) — the migration count of an adaptation
    /// round.
    pub fn migrations_from(&self, other: &Assignment) -> usize {
        self.map.iter().filter(|(q, n)| other.map.get(q).is_some_and(|o| o != *n)).count()
    }

    /// Per-processor aggregate load, given the query set.
    pub fn loads(&self, queries: &[QuerySpec], processors: &[NodeId]) -> Vec<f64> {
        let index: HashMap<NodeId, usize> =
            processors.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut loads = vec![0.0; processors.len()];
        for q in queries {
            if let Some(&node) = self.map.get(&q.id) {
                if let Some(&i) = index.get(&node) {
                    loads[i] += q.load;
                }
            }
        }
        loads
    }

    /// Per-processor union interest, given the query set — the merged
    /// subscription each processor inserts into the Pub/Sub.
    pub fn interests(
        &self,
        queries: &[QuerySpec],
        processors: &[NodeId],
        universe: usize,
    ) -> Vec<InterestSet> {
        let index: HashMap<NodeId, usize> =
            processors.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut interests = vec![InterestSet::new(universe); processors.len()];
        for q in queries {
            if let Some(&node) = self.map.get(&q.id) {
                if let Some(&i) = index.get(&node) {
                    interests[i].union_with(&q.interest);
                }
            }
        }
        interests
    }
}

impl FromIterator<(QueryId, NodeId)> for Assignment {
    fn from_iter<T: IntoIterator<Item = (QueryId, NodeId)>>(iter: T) -> Self {
        Self { map: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u64, load: f64, proxy: u32) -> QuerySpec {
        QuerySpec {
            id: QueryId(id),
            interest: InterestSet::from_indices(10, [id as usize % 10]),
            load,
            proxy: NodeId(proxy),
            result_rate: 1.0,
            state_size: 1.0,
        }
    }

    #[test]
    fn place_and_lookup() {
        let mut a = Assignment::new();
        a.place(QueryId(1), NodeId(5));
        a.place(QueryId(2), NodeId(6));
        a.place(QueryId(1), NodeId(7)); // re-place
        assert_eq!(a.processor_of(QueryId(1)), Some(NodeId(7)));
        assert_eq!(a.len(), 2);
        assert_eq!(a.remove(QueryId(2)), Some(NodeId(6)));
        assert_eq!(a.processor_of(QueryId(2)), None);
    }

    #[test]
    fn migration_count() {
        let a: Assignment =
            [(QueryId(1), NodeId(1)), (QueryId(2), NodeId(2))].into_iter().collect();
        let mut b = a.clone();
        assert_eq!(b.migrations_from(&a), 0);
        b.place(QueryId(2), NodeId(3));
        assert_eq!(b.migrations_from(&a), 1);
        b.place(QueryId(9), NodeId(9)); // new query: not a migration
        assert_eq!(b.migrations_from(&a), 1);
    }

    #[test]
    fn loads_and_interests_aggregate() {
        let queries = vec![spec(1, 2.0, 0), spec(2, 3.0, 0), spec(3, 4.0, 0)];
        let procs = vec![NodeId(10), NodeId(11)];
        let a: Assignment =
            [(QueryId(1), NodeId(10)), (QueryId(2), NodeId(10)), (QueryId(3), NodeId(11))]
                .into_iter()
                .collect();
        assert_eq!(a.loads(&queries, &procs), vec![5.0, 4.0]);
        let interests = a.interests(&queries, &procs, 10);
        assert_eq!(interests[0].len(), 2); // substreams 1 and 2
        assert_eq!(interests[1].len(), 1);
    }

    #[test]
    fn input_rate_weighs_interest() {
        let q = spec(3, 1.0, 0);
        let rates: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(q.input_rate(&rates), 3.0);
    }
}
