//! Statistics collection (§3.8).
//!
//! "Stream statistics are periodically multicast to the coordinators from
//! the sources. … the stream statistics we need is the data rate of each
//! substream. In addition, each processor periodically collects the average
//! CPU time that each of its running queries consumes per unit time."
//!
//! In the simulation, the ground truth lives in the
//! [`cosmos_pubsub::SubstreamTable`]; [`StatisticsView`] models what the
//! optimizer *believes*: a possibly stale or perturbed copy that is
//! refreshed on a reporting period. Figure 7's "inaccurate statistics"
//! scenarios are built from exactly this gap.

use cosmos_pubsub::SubstreamTable;
use cosmos_query::QueryId;
use cosmos_util::rng::rng_for;
use rand::Rng;

/// One unit of statistics change, as reported between adaptation rounds —
/// the delta stream the incremental optimizer
/// ([`crate::incremental::IncrementalOptimizer`]) ingests instead of
/// re-reading the whole world every round.
///
/// Deltas are *hints*: the optimizer's caches are keyed on content
/// fingerprints, so an over-reported delta costs a little recomputation
/// and an under-reported one is still caught by the fingerprint check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatDelta {
    /// A substream's rate moved (the sources' periodic rate report).
    RateChanged {
        /// Index of the substream whose rate changed.
        substream: usize,
    },
    /// A query's measured statistics (load, result rate, state size) moved.
    QueryChanged {
        /// The query whose statistics changed.
        id: QueryId,
    },
    /// A query arrived (inserted online, §3.6).
    QueryArrived {
        /// The new query.
        id: QueryId,
    },
    /// A query departed.
    QueryDeparted {
        /// The removed query.
        id: QueryId,
    },
    /// A processor joined the hierarchy (§3.3).
    ProcessorJoined,
    /// A processor left the hierarchy.
    ProcessorLeft,
}

/// The optimizer's view of substream rates and query loads — possibly out
/// of date with respect to ground truth.
#[derive(Debug, Clone)]
pub struct StatisticsView {
    rates: Vec<f64>,
    /// How many refreshes have been applied.
    version: u64,
}

impl StatisticsView {
    /// A view initialized from ground truth (accurate a-priori statistics).
    pub fn accurate(table: &SubstreamTable) -> Self {
        Self { rates: table.rates().to_vec(), version: 0 }
    }

    /// A view with rates perturbed by a multiplicative noise factor in
    /// `[1/(1+noise), 1+noise]` — inaccurate a-priori statistics.
    ///
    /// # Panics
    ///
    /// Panics if `noise` is negative.
    pub fn inaccurate(table: &SubstreamTable, noise: f64, seed: u64) -> Self {
        assert!(noise >= 0.0, "noise must be non-negative");
        let mut rng = rng_for(seed, "stats-noise");
        let rates = table
            .rates()
            .iter()
            .map(|&r| {
                let f = rng.gen_range(1.0..=1.0 + noise);
                if rng.gen_bool(0.5) {
                    r * f
                } else {
                    r / f
                }
            })
            .collect();
        Self { rates, version: 0 }
    }

    /// The believed rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Number of refreshes applied so far.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// A periodic statistics report: adopt the current ground truth.
    pub fn refresh(&mut self, table: &SubstreamTable) {
        self.rates.clear();
        self.rates.extend_from_slice(table.rates());
        self.version += 1;
    }

    /// Mean relative error against ground truth (diagnostic).
    pub fn relative_error(&self, table: &SubstreamTable) -> f64 {
        let truth = table.rates();
        if truth.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .rates
            .iter()
            .zip(truth)
            .map(|(&b, &t)| if t.abs() < 1e-12 { 0.0 } else { (b - t).abs() / t })
            .sum();
        total / truth.len() as f64
    }
}

/// Estimates a query's load from its input rate — the paper sets query
/// workload "proportional to their input stream rates" (§4.1).
pub fn estimate_load(input_rate: f64, load_per_byte: f64) -> f64 {
    input_rate * load_per_byte
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SubstreamTable {
        SubstreamTable::random(100, 4, 1.0, 10.0, 7)
    }

    #[test]
    fn accurate_view_has_zero_error() {
        let t = table();
        let v = StatisticsView::accurate(&t);
        assert_eq!(v.relative_error(&t), 0.0);
        assert_eq!(v.rates(), t.rates());
    }

    #[test]
    fn inaccurate_view_has_positive_error() {
        let t = table();
        let v = StatisticsView::inaccurate(&t, 1.0, 3);
        assert!(v.relative_error(&t) > 0.05, "error {}", v.relative_error(&t));
    }

    #[test]
    fn refresh_restores_accuracy() {
        let t = table();
        let mut v = StatisticsView::inaccurate(&t, 2.0, 4);
        assert!(v.relative_error(&t) > 0.0);
        v.refresh(&t);
        assert_eq!(v.relative_error(&t), 0.0);
        assert_eq!(v.version(), 1);
    }

    #[test]
    fn refresh_tracks_rate_changes() {
        let mut t = table();
        let mut v = StatisticsView::accurate(&t);
        t.scale_rate(0, 10.0);
        assert!(v.relative_error(&t) > 0.0);
        v.refresh(&t);
        assert_eq!(v.relative_error(&t), 0.0);
    }

    #[test]
    fn load_estimation_is_linear() {
        assert_eq!(estimate_load(100.0, 0.01), 1.0);
        assert_eq!(estimate_load(0.0, 0.01), 0.0);
    }
}
