//! The coordinator hierarchy (§3.3).
//!
//! Coordinators are a subset of processors organized into a tree: at the
//! bottom, every processor is its own cluster; each level up, close-by (in
//! transfer latency) coordinators are clustered into groups of size
//! `[k, 3k−1]` whose *median* — the member with minimum total latency to
//! the others — becomes the parent (after Banerjee et al.'s scalable
//! application-layer multicast construction). The root's cluster may be
//! smaller than `k`.

use cosmos_net::{Deployment, NodeId};
use std::collections::HashSet;

/// One node of the coordinator tree.
#[derive(Debug, Clone)]
pub struct CoordNode {
    /// Parent coordinator index (`None` for the root).
    pub parent: Option<usize>,
    /// Child coordinator indices (empty at processor level).
    pub children: Vec<usize>,
    /// The physical processor playing this coordinator role (the cluster
    /// median).
    pub representative: NodeId,
    /// All descendant processors.
    pub processors: Vec<NodeId>,
    proc_set: HashSet<NodeId>,
    /// Aggregate capability of the descendant processors.
    pub capability: f64,
    /// Tree level: 0 = processor, increasing toward the root.
    pub level: usize,
    /// `false` once detached by dynamic maintenance (indices are stable, so
    /// removed nodes stay in the arena but drop out of every query).
    active: bool,
}

impl CoordNode {
    /// Does this coordinator's subtree contain `node`?
    pub fn covers(&self, node: NodeId) -> bool {
        self.proc_set.contains(&node)
    }
}

/// The coordinator tree over a deployment's processors.
///
/// # Examples
///
/// ```
/// use cosmos_core::hierarchy::CoordinatorTree;
/// use cosmos_net::{Deployment, TransitStubConfig};
///
/// let topo = TransitStubConfig::small().generate(3);
/// let dep = Deployment::assign(topo, 3, 9, 3);
/// let tree = CoordinatorTree::build(&dep, 2);
/// let root = tree.node(tree.root());
/// assert_eq!(root.processors.len(), 9);
/// ```
#[derive(Debug, Clone)]
pub struct CoordinatorTree {
    nodes: Vec<CoordNode>,
    root: usize,
    /// Bumped on every structural change (`join`/`leave`): the incremental
    /// optimizer keys its caches on this, so any topology change falls back
    /// to wholesale recomputation.
    generation: u64,
}

impl CoordinatorTree {
    /// Builds the tree with cluster-size parameter `k` and uniform
    /// processor capability 1.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or the deployment has no processors.
    pub fn build(dep: &Deployment, k: usize) -> Self {
        let caps = vec![1.0; dep.processors().len()];
        Self::build_with_capabilities(dep, k, &caps)
    }

    /// Builds the tree with explicit per-processor capabilities (aligned
    /// with `dep.processors()`).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`, there are no processors, or the capability slice
    /// length mismatches.
    pub fn build_with_capabilities(dep: &Deployment, k: usize, capabilities: &[f64]) -> Self {
        assert!(k >= 2, "cluster size parameter k must be at least 2");
        let procs = dep.processors();
        assert!(!procs.is_empty(), "deployment has no processors");
        assert_eq!(capabilities.len(), procs.len(), "one capability per processor");

        let mut nodes: Vec<CoordNode> = procs
            .iter()
            .zip(capabilities)
            .map(|(&p, &c)| CoordNode {
                parent: None,
                children: Vec::new(),
                representative: p,
                processors: vec![p],
                proc_set: HashSet::from([p]),
                capability: c,
                level: 0,
                active: true,
            })
            .collect();

        let mut current: Vec<usize> = (0..nodes.len()).collect();
        let mut level = 0;
        while current.len() > 1 {
            level += 1;
            let clusters = cluster_level(&nodes, &current, k, dep);
            let mut next = Vec::with_capacity(clusters.len());
            for members in clusters {
                let median = median_of(&nodes, &members, dep);
                let mut processors = Vec::new();
                let mut capability = 0.0;
                for &m in &members {
                    processors.extend(nodes[m].processors.iter().copied());
                    capability += nodes[m].capability;
                }
                let proc_set = processors.iter().copied().collect();
                let parent_idx = nodes.len();
                nodes.push(CoordNode {
                    parent: None,
                    children: members.clone(),
                    representative: nodes[median].representative,
                    processors,
                    proc_set,
                    capability,
                    level,
                    active: true,
                });
                for &m in &members {
                    nodes[m].parent = Some(parent_idx);
                }
                next.push(parent_idx);
            }
            current = next;
        }
        let root = current[0];
        Self { nodes, root, generation: 0 }
    }

    /// The root coordinator's index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Structural generation: incremented by every [`CoordinatorTree::join`]
    /// and every successful [`CoordinatorTree::leave`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The coordinator at `idx`.
    pub fn node(&self, idx: usize) -> &CoordNode {
        &self.nodes[idx]
    }

    /// Number of tree nodes (processors + internal coordinators).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` for an empty tree (never: `build` panics first).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Tree height (root's level).
    pub fn height(&self) -> usize {
        self.nodes[self.root].level
    }

    /// Indices of all internal (level ≥ 1) coordinators, bottom-up.
    pub fn internal_bottom_up(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].active && self.nodes[i].level >= 1)
            .collect();
        idx.sort_by_key(|&i| self.nodes[i].level);
        idx
    }

    /// The position (within `coord`'s children) of the child whose subtree
    /// covers `node`, if any.
    pub fn covering_child(&self, coord: usize, node: NodeId) -> Option<usize> {
        self.nodes[coord].children.iter().position(|&c| self.nodes[c].covers(node))
    }

    /// Whether `idx` is still part of the tree (detached nodes keep their
    /// arena slots but drop out of every query).
    pub fn is_active(&self, idx: usize) -> bool {
        self.nodes[idx].active
    }

    /// The level-0 node index of a processor.
    pub fn leaf_of(&self, processor: NodeId) -> Option<usize> {
        self.nodes.iter().position(|n| n.active && n.level == 0 && n.representative == processor)
    }

    /// Incrementally admits a new processor (§3.3: "The tree is constructed
    /// incrementally and dynamically"): the processor joins the closest
    /// level-1 cluster; a cluster growing past `3k − 1` members splits into
    /// two proximity-based halves. Medians, processor sets, and
    /// capabilities are refreshed along the ancestor path.
    ///
    /// # Panics
    ///
    /// Panics if `processor` is already in the tree or `k < 2`.
    pub fn join(&mut self, processor: NodeId, capability: f64, k: usize, dep: &Deployment) {
        assert!(k >= 2, "cluster size parameter k must be at least 2");
        assert!(self.leaf_of(processor).is_none(), "{processor} is already part of the hierarchy");
        self.generation += 1;
        // New level-0 node.
        let leaf = self.nodes.len();
        self.nodes.push(CoordNode {
            parent: None,
            children: Vec::new(),
            representative: processor,
            processors: vec![processor],
            proc_set: HashSet::from([processor]),
            capability,
            level: 0,
            active: true,
        });
        // Degenerate tree (single processor): create a level-1 root.
        if self.nodes[self.root].level == 0 {
            let old_root = self.root;
            let new_root = self.nodes.len();
            let processors: Vec<NodeId> =
                self.nodes[old_root].processors.iter().copied().chain([processor]).collect();
            let proc_set = processors.iter().copied().collect();
            let capability = self.nodes[old_root].capability + capability;
            self.nodes.push(CoordNode {
                parent: None,
                children: vec![old_root, leaf],
                representative: self.nodes[old_root].representative,
                processors,
                proc_set,
                capability,
                level: 1,
                active: true,
            });
            self.nodes[old_root].parent = Some(new_root);
            self.nodes[leaf].parent = Some(new_root);
            self.root = new_root;
            self.refresh_upward(new_root, dep);
            return;
        }
        // Closest level-1 cluster by representative latency. Detached
        // nodes stay in the arena with stale representatives (possibly
        // this very processor, rejoining after a merge deactivated its
        // old cluster at distance zero) — they must never win, or the new
        // leaf is grafted outside the reachable tree.
        let target = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.active && n.level == 1)
            .min_by(|(_, a), (_, b)| {
                let da = dep.distance(processor, a.representative);
                let db = dep.distance(processor, b.representative);
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .expect("a non-degenerate tree has level-1 coordinators");
        self.nodes[leaf].parent = Some(target);
        self.nodes[target].children.push(leaf);
        if self.nodes[target].children.len() > 3 * k - 1 {
            self.split_cluster(target, k, dep);
        }
        self.refresh_upward(target, dep);
    }

    /// Removes a processor from the hierarchy. A level-1 cluster shrinking
    /// below `k` members merges into its nearest sibling cluster (when one
    /// exists). Returns `false` when the processor is unknown.
    ///
    /// # Panics
    ///
    /// Panics when removing the last processor of the tree.
    pub fn leave(&mut self, processor: NodeId, k: usize, dep: &Deployment) -> bool {
        let Some(leaf) = self.leaf_of(processor) else {
            return false;
        };
        assert!(self.nodes[self.root].processors.len() > 1, "cannot remove the last processor");
        let Some(parent) = self.nodes[leaf].parent else {
            return false; // degenerate single-node tree guarded above
        };
        self.generation += 1;
        self.nodes[parent].children.retain(|&c| c != leaf);
        self.nodes[leaf].parent = None;
        self.nodes[leaf].active = false;
        // Under-full cluster: merge into the nearest sibling cluster.
        if self.nodes[parent].children.len() < k {
            let rep = self.nodes[parent].representative;
            let sibling = match self.nodes[parent].parent {
                Some(gp) => {
                    self.nodes[gp].children.iter().copied().filter(|&c| c != parent).min_by(
                        |&a, &b| {
                            let da = dep.distance(rep, self.nodes[a].representative);
                            let db = dep.distance(rep, self.nodes[b].representative);
                            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                        },
                    )
                }
                None => None,
            };
            if let Some(sib) = sibling {
                let orphans = std::mem::take(&mut self.nodes[parent].children);
                for o in &orphans {
                    self.nodes[*o].parent = Some(sib);
                }
                self.nodes[sib].children.extend(orphans);
                if let Some(gp) = self.nodes[parent].parent {
                    self.nodes[gp].children.retain(|&c| c != parent);
                }
                // Sever the upward link too: a detached node with a live
                // parent pointer reads as reachable to naive walks.
                self.nodes[parent].parent = None;
                self.nodes[parent].active = false;
                if self.nodes[sib].children.len() > 3 * k - 1 {
                    self.split_cluster(sib, k, dep);
                }
                self.refresh_upward(sib, dep);
                return true;
            }
        }
        self.refresh_upward(parent, dep);
        true
    }

    /// Splits an over-full cluster into two proximity halves, attaching the
    /// new half to the same grandparent (or a new root).
    fn split_cluster(&mut self, coord: usize, k: usize, dep: &Deployment) {
        let members = self.nodes[coord].children.clone();
        debug_assert!(members.len() >= 2 * k, "split requires at least 2k members");
        // Seeds: the two mutually farthest members.
        let (mut s1, mut s2, mut best) = (members[0], members[1], -1.0);
        for &a in &members {
            for &b in &members {
                if a == b {
                    continue;
                }
                let d = dep.distance(self.nodes[a].representative, self.nodes[b].representative);
                if d > best {
                    best = d;
                    s1 = a;
                    s2 = b;
                }
            }
        }
        let mut half1 = vec![s1];
        let mut half2 = vec![s2];
        let mut rest: Vec<usize> =
            members.iter().copied().filter(|&m| m != s1 && m != s2).collect();
        // Assign nearest-seed first, then rebalance to respect ≥ k.
        rest.sort_by(|&a, &b| {
            let da = dep.distance(self.nodes[a].representative, self.nodes[s1].representative);
            let db = dep.distance(self.nodes[b].representative, self.nodes[s1].representative);
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        });
        for m in rest {
            let d1 = dep.distance(self.nodes[m].representative, self.nodes[s1].representative);
            let d2 = dep.distance(self.nodes[m].representative, self.nodes[s2].representative);
            if (d1 <= d2 && half1.len() < members.len() - k) || half2.len() >= members.len() - k {
                half1.push(m);
            } else {
                half2.push(m);
            }
        }
        // Keep half1 in `coord`; create a sibling for half2.
        let level = self.nodes[coord].level;
        let parent = self.nodes[coord].parent;
        let sibling = self.nodes.len();
        self.nodes.push(CoordNode {
            parent,
            children: half2.clone(),
            representative: self.nodes[s2].representative,
            processors: Vec::new(),
            proc_set: HashSet::new(),
            capability: 0.0,
            level,
            active: true,
        });
        for &m in &half2 {
            self.nodes[m].parent = Some(sibling);
        }
        self.nodes[coord].children = half1;
        match parent {
            Some(gp) => {
                self.nodes[gp].children.push(sibling);
                if self.nodes[gp].children.len() > 3 * k - 1 {
                    self.split_cluster(gp, k, dep);
                }
            }
            None => {
                // Splitting the root: grow the tree by one level.
                let new_root = self.nodes.len();
                self.nodes.push(CoordNode {
                    parent: None,
                    children: vec![coord, sibling],
                    representative: self.nodes[coord].representative,
                    processors: Vec::new(),
                    proc_set: HashSet::new(),
                    capability: 0.0,
                    level: level + 1,
                    active: true,
                });
                self.nodes[coord].parent = Some(new_root);
                self.nodes[sibling].parent = Some(new_root);
                self.root = new_root;
            }
        }
        self.refresh_node(sibling, dep);
    }

    /// Recomputes processors / capability / representative of `coord` from
    /// its children.
    fn refresh_node(&mut self, coord: usize, dep: &Deployment) {
        if self.nodes[coord].level == 0 {
            return;
        }
        let children = self.nodes[coord].children.clone();
        let mut processors = Vec::new();
        let mut capability = 0.0;
        for &c in &children {
            processors.extend(self.nodes[c].processors.iter().copied());
            capability += self.nodes[c].capability;
        }
        let median = children
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let ra = self.nodes[a].representative;
                let rb = self.nodes[b].representative;
                let da: f64 =
                    children.iter().map(|&o| dep.distance(ra, self.nodes[o].representative)).sum();
                let db: f64 =
                    children.iter().map(|&o| dep.distance(rb, self.nodes[o].representative)).sum();
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("internal nodes have children");
        let median_rep = self.nodes[median].representative;
        let node = &mut self.nodes[coord];
        node.proc_set = processors.iter().copied().collect();
        node.processors = processors;
        node.capability = capability;
        node.representative = median_rep;
    }

    /// Refreshes `coord` and every ancestor.
    fn refresh_upward(&mut self, coord: usize, dep: &Deployment) {
        let mut cur = Some(coord);
        while let Some(c) = cur {
            self.refresh_node(c, dep);
            cur = self.nodes[c].parent;
        }
    }

    /// Validates structural invariants (used by tests and after dynamic
    /// maintenance): parent/child symmetry, exact processor coverage, and
    /// medians drawn from members.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Every active node must be reachable from the root. Detached
        // nodes keep their arena slots, so a maintenance bug that grafts
        // a new leaf under a deactivated coordinator is invisible to the
        // per-node checks below — only a root walk exposes it.
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        while let Some(i) = stack.pop() {
            seen[i] = true;
            stack.extend(self.nodes[i].children.iter().copied());
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.active && !seen[i] {
                return Err(format!("active node {i} is unreachable from root {}", self.root));
            }
            if !n.active && seen[i] {
                return Err(format!("inactive node {i} is still linked under root {}", self.root));
            }
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.active {
                continue;
            }
            for &c in &n.children {
                if self.nodes[c].parent != Some(i) {
                    return Err(format!("child {c} of {i} has parent {:?}", self.nodes[c].parent));
                }
            }
            if n.level > 0 && !n.children.is_empty() {
                let mut procs: Vec<NodeId> = n
                    .children
                    .iter()
                    .flat_map(|&c| self.nodes[c].processors.iter().copied())
                    .collect();
                procs.sort();
                let mut own = n.processors.clone();
                own.sort();
                if procs != own {
                    return Err(format!("node {i} processor set out of sync"));
                }
                if !n.children.iter().any(|&c| self.nodes[c].representative == n.representative) {
                    return Err(format!("node {i} representative is not a member median"));
                }
            }
        }
        Ok(())
    }
}

/// Greedy proximity clustering of `items` into groups of size `[k, 3k−1]`
/// (one final group may grow to `2k−1 + k` at most when absorbing a
/// remainder smaller than `k`).
fn cluster_level(
    nodes: &[CoordNode],
    items: &[usize],
    k: usize,
    dep: &Deployment,
) -> Vec<Vec<usize>> {
    if items.len() < 3 * k {
        return vec![items.to_vec()];
    }
    let mut remaining: Vec<usize> = items.to_vec();
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    while remaining.len() >= 2 * k {
        let seed = remaining[0];
        let seed_rep = nodes[seed].representative;
        // k−1 nearest to the seed (deterministic tie-break on index).
        let mut rest: Vec<usize> = remaining[1..].to_vec();
        rest.sort_by(|&a, &b| {
            let da = dep.distance(seed_rep, nodes[a].representative);
            let db = dep.distance(seed_rep, nodes[b].representative);
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
        });
        let mut cluster = vec![seed];
        cluster.extend(rest.iter().take(k - 1).copied());
        remaining.retain(|i| !cluster.contains(i));
        clusters.push(cluster);
    }
    if !remaining.is_empty() {
        if remaining.len() >= k || clusters.is_empty() {
            clusters.push(remaining);
        } else {
            // Too small for its own cluster: absorb into the last one
            // (size ≤ k + k − 1 ≤ 3k − 1? k + (k−1) = 2k−1 ✓).
            clusters.last_mut().expect("guarded by is_empty").extend(remaining);
        }
    }
    clusters
}

/// The member with minimum total latency to the rest (the paper's median).
fn median_of(nodes: &[CoordNode], members: &[usize], dep: &Deployment) -> usize {
    let mut best = members[0];
    let mut best_total = f64::INFINITY;
    for &m in members {
        let total: f64 = members
            .iter()
            .map(|&o| dep.distance(nodes[m].representative, nodes[o].representative))
            .sum();
        if total < best_total {
            best_total = total;
            best = m;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_net::TransitStubConfig;

    fn deployment(n_procs: usize, seed: u64) -> Deployment {
        let topo = TransitStubConfig::small().generate(seed);
        Deployment::assign(topo, 3, n_procs, seed)
    }

    #[test]
    fn every_processor_is_a_leaf() {
        let dep = deployment(10, 1);
        let tree = CoordinatorTree::build(&dep, 2);
        for &p in dep.processors() {
            let leaf = tree.leaf_of(p).expect("leaf exists");
            assert_eq!(tree.node(leaf).level, 0);
            assert_eq!(tree.node(leaf).processors, vec![p]);
        }
    }

    #[test]
    fn root_covers_everything() {
        let dep = deployment(12, 2);
        let tree = CoordinatorTree::build(&dep, 3);
        let root = tree.node(tree.root());
        assert_eq!(root.processors.len(), 12);
        for &p in dep.processors() {
            assert!(root.covers(p));
        }
        assert!((root.capability - 12.0).abs() < 1e-9);
    }

    #[test]
    fn cluster_sizes_respect_bounds() {
        let dep = deployment(20, 3);
        let k = 3;
        let tree = CoordinatorTree::build(&dep, k);
        for idx in tree.internal_bottom_up() {
            let n = tree.node(idx);
            if idx == tree.root() {
                assert!(n.children.len() <= 3 * k - 1 + k); // root may absorb remainder
            } else {
                assert!(
                    n.children.len() >= k.min(n.children.len()) && n.children.len() < 3 * k,
                    "cluster of {} children violates [k, 3k-1]",
                    n.children.len()
                );
            }
        }
    }

    #[test]
    fn parents_are_members_medians() {
        let dep = deployment(9, 4);
        let tree = CoordinatorTree::build(&dep, 2);
        for idx in tree.internal_bottom_up() {
            let n = tree.node(idx);
            // The representative must be one of the children's representatives.
            assert!(
                n.children.iter().any(|&c| tree.node(c).representative == n.representative),
                "parent representative not among its cluster"
            );
        }
    }

    #[test]
    fn covering_child_partition() {
        let dep = deployment(14, 5);
        let tree = CoordinatorTree::build(&dep, 2);
        let root = tree.root();
        for &p in dep.processors() {
            let pos = tree.covering_child(root, p).expect("root covers all");
            let child = tree.node(root).children[pos];
            assert!(tree.node(child).covers(p));
            // Exactly one child covers a processor.
            let count =
                tree.node(root).children.iter().filter(|&&c| tree.node(c).covers(p)).count();
            assert_eq!(count, 1);
        }
        // A non-processor node is covered by nobody.
        assert_eq!(tree.covering_child(root, NodeId(u32::MAX - 1)), None);
    }

    #[test]
    fn smaller_k_means_taller_tree() {
        let dep = deployment(16, 6);
        let t2 = CoordinatorTree::build(&dep, 2);
        let t8 = CoordinatorTree::build(&dep, 8);
        assert!(t2.height() > t8.height(), "{} vs {}", t2.height(), t8.height());
    }

    #[test]
    fn capabilities_flow_up() {
        let dep = deployment(6, 7);
        let caps = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let tree = CoordinatorTree::build_with_capabilities(&dep, 2, &caps);
        let root = tree.node(tree.root());
        assert!((root.capability - 21.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn k1_is_rejected() {
        let dep = deployment(4, 8);
        let _ = CoordinatorTree::build(&dep, 1);
    }

    #[test]
    fn single_processor_tree() {
        let dep = deployment(1, 9);
        let tree = CoordinatorTree::build(&dep, 2);
        assert_eq!(tree.root(), 0);
        assert_eq!(tree.height(), 0);
    }

    #[test]
    fn join_grows_tree_and_keeps_invariants() {
        // Build on 10 of 14 processors, then join the remaining 4.
        let topo = TransitStubConfig::small().generate(30);
        let dep = Deployment::assign(topo, 3, 14, 30);
        let first: Vec<_> = dep.processors()[..10].to_vec();
        let dep_small =
            Deployment::with_roles(dep.topology().clone(), dep.sources().to_vec(), first.clone());
        let mut tree = CoordinatorTree::build(&dep_small, 2);
        for &p in &dep.processors()[10..] {
            tree.join(p, 1.0, 2, &dep);
            tree.check_invariants().expect("invariants after join");
        }
        let root = tree.node(tree.root());
        assert_eq!(root.processors.len(), 14);
        for &p in dep.processors() {
            assert!(root.covers(p), "{p} missing after joins");
            assert!(tree.leaf_of(p).is_some());
        }
        assert!((root.capability - 14.0).abs() < 1e-9);
    }

    #[test]
    fn join_splits_overfull_clusters() {
        let topo = TransitStubConfig::small().generate(31);
        let dep = Deployment::assign(topo, 3, 16, 31);
        let first: Vec<_> = dep.processors()[..4].to_vec();
        let dep_small =
            Deployment::with_roles(dep.topology().clone(), dep.sources().to_vec(), first);
        let k = 2;
        let mut tree = CoordinatorTree::build(&dep_small, k);
        for &p in &dep.processors()[4..] {
            tree.join(p, 1.0, k, &dep);
        }
        tree.check_invariants().expect("invariants");
        // No level-1 cluster may exceed 3k-1 members.
        for i in 0..tree.len() {
            let n = tree.node(i);
            if n.level == 1 {
                assert!(
                    n.children.len() < 3 * k,
                    "cluster of {} children after joins",
                    n.children.len()
                );
            }
        }
    }

    #[test]
    fn leave_removes_processor_and_merges_underfull_clusters() {
        let dep = deployment(12, 32);
        let k = 2;
        let mut tree = CoordinatorTree::build(&dep, k);
        let victims: Vec<_> = dep.processors()[..6].to_vec();
        for &p in &victims {
            assert!(tree.leave(p, k, &dep), "{p} should be removable");
            tree.check_invariants().expect("invariants after leave");
            assert!(tree.leaf_of(p).is_none());
        }
        let root = tree.node(tree.root());
        assert_eq!(root.processors.len(), 6);
        for &p in &dep.processors()[6..] {
            assert!(root.covers(p));
        }
        // Unknown processor: no-op.
        assert!(!tree.leave(victims[0], k, &dep));
    }

    #[test]
    fn join_then_leave_round_trip() {
        let topo = TransitStubConfig::small().generate(33);
        let dep = Deployment::assign(topo, 3, 9, 33);
        let first: Vec<_> = dep.processors()[..8].to_vec();
        let dep_small =
            Deployment::with_roles(dep.topology().clone(), dep.sources().to_vec(), first);
        let mut tree = CoordinatorTree::build(&dep_small, 2);
        let extra = dep.processors()[8];
        tree.join(extra, 1.0, 2, &dep);
        assert!(tree.node(tree.root()).covers(extra));
        assert!(tree.leave(extra, 2, &dep));
        assert!(!tree.node(tree.root()).covers(extra));
        tree.check_invariants().expect("invariants");
        assert_eq!(tree.node(tree.root()).processors.len(), 8);
    }

    /// Regression: a processor whose departure merged its underfull
    /// cluster away must rejoin the *reachable* tree. The deactivated
    /// cluster keeps its arena slot with the departed processor as its
    /// stale representative (distance zero to itself), so an unfiltered
    /// closest-cluster search grafts the new leaf under the detached node
    /// — present per `leaf_of`, invisible to every root-down walk, and
    /// any query homed there silently vanishes from distribution.
    #[test]
    fn rejoin_after_cluster_merge_stays_reachable() {
        let dep = deployment(12, 32);
        let k = 2;
        let mut tree = CoordinatorTree::build(&dep, k);
        // Find a processor whose leave collapses its cluster below k.
        let victim = *dep
            .processors()
            .iter()
            .find(|&&p| {
                let leaf = tree.leaf_of(p).unwrap();
                let parent = tree.node(leaf).parent.unwrap();
                tree.node(parent).children.len() == k
            })
            .expect("some cluster sits at the minimum size");
        assert!(tree.leave(victim, k, &dep));
        tree.check_invariants().expect("invariants after merging leave");
        tree.join(victim, 1.0, k, &dep);
        tree.check_invariants().expect("invariants after rejoin");
        let leaf = tree.leaf_of(victim).expect("rejoined leaf exists");
        // The new leaf's ancestor chain must end at the root.
        let mut cur = leaf;
        while let Some(parent) = tree.node(cur).parent {
            assert!(tree.is_active(parent), "ancestor {parent} of rejoined leaf is detached");
            cur = parent;
        }
        assert_eq!(cur, tree.root(), "rejoined leaf is not attached under the root");
        assert!(tree.node(tree.root()).covers(victim));
    }

    #[test]
    fn determinism() {
        let dep = deployment(15, 10);
        let a = CoordinatorTree::build(&dep, 3);
        let b = CoordinatorTree::build(&dep, 3);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.node(i).representative, b.node(i).representative);
            assert_eq!(a.node(i).children, b.node(i).children);
        }
    }
}
