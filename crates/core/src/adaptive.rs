//! Adaptive query redistribution — Algorithm 3 and the refinement phase
//! (§3.7).
//!
//! Adaptation runs in rounds, root-first: every coordinator re-balances
//! load among its children with a Hu–Blake *load diffusion* solution (the
//! minimum-Euclidean-norm set of inter-child transfers that balances load),
//! then refines the mapping to shave WEC without breaking balance. Children
//! repeat the procedure on the finer-grained vertices they receive, down to
//! the processors. Actual query migration happens only after all decisions
//! are made — the driver compares the old and new assignments.
//!
//! Vertex-selection heuristics from the paper, all implemented here:
//!
//! - prefer vertices whose migration *benefit* (WEC reduction) is within
//!   `x% = 10%` of the largest benefit;
//! - among those, prefer **dirty** vertices (already picked for remapping
//!   in this round — moving them again adds no migration cost);
//! - among those, prefer the largest **load density** (load per unit of
//!   operator state), minimizing the state that must move;
//! - a vertex may only absorb a transfer `m_ij` that exceeds 90% of its
//!   weight (no drastic overshoot).

use crate::distribute::{DistTiming, Distributor, HierarchyGraphs};
use crate::graph::{NetworkGraph, QgVertex, QueryGraph};
use crate::incremental::{vertex_raw_fp, HierCache, PlaceStore};
use crate::spec::{Assignment, QuerySpec};
use cosmos_net::NodeId;
use cosmos_query::QueryId;
use cosmos_util::pool::parallel_map;
use cosmos_util::rng::rng_for_indexed;
use cosmos_util::solver::diffusion_solution;
use rand::seq::SliceRandom;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Tuning knobs for adaptation.
#[derive(Debug, Clone, Copy)]
pub struct AdaptConfig {
    /// Benefit window (`x`, as a fraction). Paper: 10%.
    pub x_fraction: f64,
    /// A vertex absorbs a transfer only if `m_ij > fill_fraction × weight`.
    /// Paper: 90%.
    pub fill_fraction: f64,
    /// Safety cap on phase-1 moves per coordinator, as a multiple of the
    /// vertex count.
    pub max_moves_factor: usize,
    /// Minimum relative WEC improvement for a phase-2 move (damps
    /// oscillation between near-tie placements across rounds).
    pub min_improvement: f64,
    /// Threads for phase-1 candidate scoring (1 = sequential). Scoring is
    /// a pure map over candidates, so the thread count cannot change the
    /// chosen moves — only the wall-clock of large coordinators.
    pub scoring_threads: usize,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        Self {
            x_fraction: 0.10,
            fill_fraction: 0.90,
            max_moves_factor: 8,
            min_improvement: 0.002,
            scoring_threads: 1,
        }
    }
}

impl AdaptConfig {
    /// Checks every knob, naming the offending one on failure.
    /// Mirrors the `FaultParams::validate` house pattern.
    pub fn validate(&self) -> Result<(), String> {
        if !self.x_fraction.is_finite() || !(0.0..=1.0).contains(&self.x_fraction) {
            return Err(format!(
                "x_fraction must be a finite fraction in [0, 1], got {}",
                self.x_fraction
            ));
        }
        if !self.fill_fraction.is_finite() || !(0.0..=1.0).contains(&self.fill_fraction) {
            return Err(format!(
                "fill_fraction must be a finite fraction in [0, 1], got {}",
                self.fill_fraction
            ));
        }
        if self.max_moves_factor == 0 {
            return Err("max_moves_factor must be at least 1".into());
        }
        if !self.min_improvement.is_finite() || self.min_improvement < 0.0 {
            return Err(format!(
                "min_improvement must be finite and non-negative, got {}",
                self.min_improvement
            ));
        }
        if self.scoring_threads == 0 {
            return Err("scoring_threads must be at least 1".into());
        }
        Ok(())
    }
}

/// Result of one adaptation round.
#[derive(Debug, Clone)]
pub struct AdaptOutcome {
    /// The new placement.
    pub assignment: Assignment,
    /// Queries whose processor changed.
    pub migrations: usize,
    /// Total operator state moved (the paper's migration-cost proxy).
    pub moved_state: f64,
    /// Optimizer running time.
    pub timing: DistTiming,
}

/// Cost of vertex `v` placed on target `k` under `mapping` (WEC terms
/// incident to `v`).
fn cost_at(qg: &QueryGraph, ng: &NetworkGraph, mapping: &[usize], v: usize, k: usize) -> f64 {
    qg.neighbors(v)
        .filter(|&(j, _)| mapping[j] != usize::MAX && j != v)
        .map(|(j, w)| w * ng.distance(k, mapping[j]))
        .sum()
}

/// The per-coordinator subtree memo used by the incremental optimizer
/// during the top-down phase: when neither a subtree's work vertices
/// (compared content-deep via the phase-A output fingerprints) nor the
/// current homes of its queries changed since the cached round, the whole
/// subtree's placement decisions are spliced in from the previous round
/// instead of re-running diffusion and refinement.
pub(crate) struct PlaceCache<'a> {
    /// Persistent entries + hit counters, owned by the optimizer.
    pub store: &'a mut PlaceStore,
    /// This round's per-coordinator output fingerprints from phase A.
    pub out_fps: &'a HashMap<usize, Vec<u64>>,
}

impl PlaceCache<'_> {
    /// Fingerprint of everything a subtree's decisions depend on (beyond
    /// the per-optimizer environment): the work vertices, content-deep,
    /// and the current home of every query they contain.
    fn subtree_fp(&self, work: &[QgVertex], current: &Assignment, rates: &[f64]) -> u64 {
        let mut h = DefaultHasher::new();
        for v in work {
            match v.tag {
                Some((coord, idx)) => self.out_fps[&coord][idx].hash(&mut h),
                None => vertex_raw_fp(v, rates).hash(&mut h),
            }
            for &q in &v.queries {
                q.hash(&mut h);
                match current.processor_of(q) {
                    Some(p) => {
                        1u8.hash(&mut h);
                        p.hash(&mut h);
                    }
                    None => 0u8.hash(&mut h),
                }
            }
        }
        h.finish()
    }

    fn lookup(&mut self, coord: usize, fp: u64) -> Option<Arc<Vec<(QueryId, NodeId)>>> {
        match self.store.entries.get(&coord) {
            Some((stored, placements)) if *stored == fp => {
                self.store.hits += 1;
                Some(placements.clone())
            }
            _ => {
                self.store.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, coord: usize, fp: u64, sub: &Assignment) {
        let mut pairs: Vec<(QueryId, NodeId)> = sub.iter().collect();
        pairs.sort_unstable_by_key(|&(q, _)| q);
        self.store.entries.insert(coord, (fp, Arc::new(pairs)));
    }
}

/// Runs one hierarchical adaptation round over the current assignment —
/// the batch path, recomputing everything from scratch. This doubles as
/// the differential oracle for
/// [`crate::incremental::IncrementalOptimizer::round`], which must produce
/// the identical outcome.
///
/// `specs` must contain every query in `current`.
///
/// # Panics
///
/// Panics if `config` fails [`AdaptConfig::validate`], if a query in
/// `specs` is missing from `current`, or if one is placed on an unknown
/// processor.
pub fn adapt_wholesale(
    d: &Distributor<'_>,
    specs: &[QuerySpec],
    current: &Assignment,
    config: &AdaptConfig,
    seed: u64,
) -> AdaptOutcome {
    adapt_with_caches(d, specs, current, config, seed, None)
}

/// The shared adaptation round behind [`adapt_wholesale`] (`caches:
/// None`) and the incremental optimizer (`caches: Some`): one
/// implementation, so the batch path and the memoized path cannot drift.
pub(crate) fn adapt_with_caches(
    d: &Distributor<'_>,
    specs: &[QuerySpec],
    current: &Assignment,
    config: &AdaptConfig,
    seed: u64,
    mut caches: Option<(&mut HierCache, &mut PlaceStore)>,
) -> AdaptOutcome {
    if let Err(e) = config.validate() {
        panic!("invalid AdaptConfig: {e}");
    }
    let mut timing = DistTiming::default();
    let mut next = Assignment::new();
    if specs.is_empty() {
        return AdaptOutcome { assignment: next, migrations: 0, moved_state: 0.0, timing };
    }
    let root = d.tree.root();
    if d.tree.node(root).children.is_empty() {
        // Single processor: nothing to adapt.
        return AdaptOutcome {
            assignment: current.clone(),
            migrations: 0,
            moved_state: 0.0,
            timing,
        };
    }

    // Bottom-up graphs grouped by *current* placement.
    let graphs = d.build_hierarchy_graphs(
        specs,
        seed,
        &mut timing,
        |spec| {
            current
                .processor_of(spec.id)
                .unwrap_or_else(|| panic!("query {} missing from current assignment", spec.id))
        },
        caches.as_mut().map(|(h, _)| &mut **h),
    );

    // Top-down redistribution. The root operates on its *combined* graph
    // (its children's outputs), not its own coarsened output: coarse
    // vertices at the root may straddle root children — their "current
    // child" would be ambiguous and every round's (re-seeded) coarsening
    // would force different spurious co-location migrations.
    let root_work: Vec<crate::graph::QgVertex> =
        graphs.constituents[root].iter().flatten().cloned().collect();
    let mut place = caches.map(|(h, p)| PlaceCache { out_fps: h.round_out_fps(), store: p });
    let response = adapt_down(
        d,
        config,
        root,
        root_work,
        &graphs,
        current,
        &mut next,
        &mut timing,
        seed,
        place.as_mut(),
    );
    timing.response += response;

    // Migration accounting at the query level.
    let mut migrations = 0;
    let mut moved_state = 0.0;
    for spec in specs {
        let old = current.processor_of(spec.id);
        let new = next.processor_of(spec.id);
        if old.is_some() && new.is_some() && old != new {
            migrations += 1;
            moved_state += spec.state_size;
        }
    }
    AdaptOutcome { assignment: next, migrations, moved_state, timing }
}

#[allow(clippy::too_many_arguments)]
fn adapt_down(
    d: &Distributor<'_>,
    config: &AdaptConfig,
    coord: usize,
    work: Vec<crate::graph::QgVertex>,
    graphs: &HierarchyGraphs,
    current: &Assignment,
    next: &mut Assignment,
    timing: &mut DistTiming,
    seed: u64,
    mut cache: Option<&mut PlaceCache<'_>>,
) -> std::time::Duration {
    let node = d.tree.node(coord);
    if node.level == 0 {
        for v in &work {
            for &q in &v.queries {
                next.place(q, node.representative);
            }
        }
        return std::time::Duration::ZERO;
    }
    // Subtree memo: replay the previous round's decisions for this whole
    // subtree when its inputs are fingerprint-identical.
    let fp = cache.as_ref().map(|c| c.subtree_fp(&work, current, d.table.rates()));
    if let (Some(c), Some(fp)) = (cache.as_deref_mut(), fp) {
        if let Some(placements) = c.lookup(coord, fp) {
            for &(q, p) in placements.iter() {
                next.place(q, p);
            }
            return std::time::Duration::ZERO;
        }
    }
    // On a miss with an active cache, decisions are collected into a local
    // assignment so the subtree's placements can be stored before being
    // merged into `next`.
    let mut local = if cache.is_some() { Some(Assignment::new()) } else { None };
    let mut sw = cosmos_util::Stopwatch::new();
    sw.start();
    let mut rng = rng_for_indexed(seed, "adapt", coord as u64);
    let qg = d.graph_from_vertices(work, seed ^ coord as u64);
    let ng = d.network_graph_at(coord, &qg);
    let n_children = ng.target_count();
    let pin = d.pin_at(coord, &ng);

    // Initial mapping = current homes; foreign arrivals get usize::MAX.
    let mut mapping = vec![usize::MAX; qg.len()];
    let mut movable: Vec<usize> = Vec::new();
    let mut arrivals: Vec<usize> = Vec::new();
    let mut dirty = vec![false; qg.len()];
    #[allow(clippy::needless_range_loop)]
    for i in 0..qg.len() {
        let v = &qg.vertices[i];
        if v.is_net() {
            mapping[i] = pin(v).expect("n-vertex must pin");
            continue;
        }
        if v.queries.is_empty() {
            continue;
        }
        let proc = current.processor_of(v.queries[0]);
        match proc.and_then(|p| d.tree.covering_child(coord, p)) {
            Some(pos) => {
                mapping[i] = pos;
                movable.push(i);
            }
            None => arrivals.push(i),
        }
    }
    let original = mapping.clone();

    let total_load: f64 = qg.total_weight();
    let total_cap = ng.total_capability();
    let limits = ng.load_limits(total_load, d.level_alpha());
    let mut loads = vec![0.0; n_children];
    for (i, &m) in mapping.iter().enumerate() {
        if m != usize::MAX && m < n_children {
            loads[m] += qg.vertices[i].weight;
        }
    }

    // Arrivals: greedy placement, marked dirty (they migrate regardless).
    for &v in &arrivals {
        let w = qg.vertices[v].weight;
        let mut best: Option<(f64, usize)> = None;
        let mut fallback: Option<(f64, f64, usize)> = None;
        for k in 0..n_children {
            let cost = cost_at(&qg, &ng, &mapping, v, k);
            if loads[k] + w <= limits[k] + 1e-12 && best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, k));
            }
            // Violations compare lexicographically; WEC cost breaks ties.
            let viol = loads[k] + w - limits[k];
            if fallback
                .is_none_or(|(vv, vc, _)| viol < vv - 1e-12 || (viol < vv + 1e-12 && cost < vc))
            {
                fallback = Some((viol, cost, k));
            }
        }
        let k = best.map(|(_, k)| k).or(fallback.map(|(_, _, k)| k)).expect("children exist");
        mapping[v] = k;
        loads[k] += w;
        dirty[v] = true;
        movable.push(v);
    }

    // ---- Phase 1: load re-balancing via diffusion (Algorithm 3).
    // Transfers below a small deadband (a few percent of the fair share)
    // are dropped: they cannot affect eqn 3.1 compliance and chasing exact
    // balance every round would migrate queries for nothing.
    let fair = |i: usize| ng.vertex(i).capability * total_load / total_cap.max(1e-12);
    let excess: Vec<f64> = (0..n_children).map(|i| loads[i] - fair(i)).collect();
    let edges: Vec<(usize, usize)> =
        (0..n_children).flat_map(|i| ((i + 1)..n_children).map(move |j| (i, j))).collect();
    let mut m = diffusion_solution(&excess, &edges);
    for (e, v) in m.iter_mut().enumerate() {
        let (i, j) = edges[e];
        let deadband = 0.02 * fair(i).min(fair(j)).max(1e-12);
        if v.abs() < deadband {
            *v = 0.0;
        }
    }
    // Normalize: keep only positive-direction transfers.
    let mut pairs: Vec<(usize, usize, usize)> = Vec::new(); // (from, to, edge idx)
    for (e, &(i, j)) in edges.iter().enumerate() {
        if m[e] > 1e-9 {
            pairs.push((i, j, e));
        } else if m[e] < -1e-9 {
            pairs.push((j, i, e));
            m[e] = -m[e];
        }
    }
    let mut moves = 0usize;
    let max_moves = config.max_moves_factor * qg.len().max(1);
    while moves < max_moves {
        let open: Vec<usize> = (0..pairs.len()).filter(|&p| m[pairs[p].2] > 1e-9).collect();
        let Some(&pick) = open.as_slice().choose(&mut rng) else { break };
        let (from, to, eidx) = pairs[pick];
        // Benefits of moving each candidate from `from` to `to`.
        let candidates: Vec<usize> = movable
            .iter()
            .copied()
            .filter(|&v| mapping[v] == from && qg.vertices[v].weight > 1e-12)
            .collect();
        // Pure per-candidate scoring: safe to fan out, bit-identical for
        // any thread count.
        let benefits: Vec<f64> = parallel_map(config.scoring_threads, &candidates, |&v| {
            cost_at(&qg, &ng, &mapping, v, from) - cost_at(&qg, &ng, &mapping, v, to)
        });
        let Some(&max_benefit) =
            benefits.iter().max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
        else {
            m[eidx] = 0.0;
            continue;
        };
        let threshold = max_benefit - config.x_fraction * max_benefit.abs();
        let in_window: Vec<usize> = candidates
            .iter()
            .copied()
            .zip(&benefits)
            .filter(|&(_, b)| *b >= threshold - 1e-12)
            .map(|(v, _)| v)
            .collect();
        let dirty_in: Vec<usize> = in_window.iter().copied().filter(|&v| dirty[v]).collect();
        let pool = if dirty_in.is_empty() { in_window } else { dirty_in };
        // Largest load density among those fitting the 90% rule.
        let fit = |v: usize| m[eidx] > config.fill_fraction * qg.vertices[v].weight;
        let chosen = pool.into_iter().filter(|&v| fit(v)).max_by(|&a, &b| {
            let da = qg.vertices[a].weight / qg.vertices[a].state_size.max(1e-12);
            let db = qg.vertices[b].weight / qg.vertices[b].state_size.max(1e-12);
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        });
        let Some(v) = chosen else {
            m[eidx] = 0.0; // no admissible vertex: give up on this pair
            continue;
        };
        let w = qg.vertices[v].weight;
        mapping[v] = to;
        loads[from] -= w;
        loads[to] += w;
        m[eidx] -= w;
        dirty[v] = true;
        moves += 1;
    }

    // ---- Phase 2: distribution refinement.
    // Refinement must not undo the balance phase 1 just bought: moves are
    // admitted against a band around the fair share (half the per-level
    // tolerance), not the full eqn 3.1 limit — otherwise WEC-greedy moves
    // re-pack processors to the limit and the paper's decreasing
    // load-deviation curves (Figure 7b) are unreproducible.
    let band: Vec<f64> =
        (0..n_children).map(|i| fair(i) * (1.0 + (d.level_alpha() * 0.5))).collect();
    // Refinement passes repeat (fresh shuffled order each time) until a
    // pass moves nothing; a small cap bounds the worst case. One pass is
    // very order-sensitive — an early vertex can block the profitable move
    // of a later one — and iterating to a fixpoint removes most of that
    // seed variance.
    for _pass in 0..4 {
        let mut order = movable.clone();
        order.shuffle(&mut rng);
        let mut moved = 0usize;
        for v in order {
            let cur = mapping[v];
            let w = qg.vertices[v].weight;
            let c_cur = cost_at(&qg, &ng, &mapping, v, cur);
            // (1) Move back home if it keeps balance and does not raise WEC.
            let home = original[v];
            if home != usize::MAX && home != cur {
                let c_home = cost_at(&qg, &ng, &mapping, v, home);
                if c_home <= c_cur + 1e-9 && loads[home] + w <= band[home] + 1e-9 {
                    mapping[v] = home;
                    loads[cur] -= w;
                    loads[home] += w;
                    moved += 1;
                    continue;
                }
            }
            // (2) Any clearly-WEC-decreasing move that keeps balance.
            let mut best: Option<(f64, usize)> = None;
            let bar = c_cur - config.min_improvement * c_cur.abs() - 1e-9;
            for k in 0..n_children {
                if k == cur || loads[k] + w > band[k] + 1e-9 {
                    continue;
                }
                let c = cost_at(&qg, &ng, &mapping, v, k);
                if c < bar && best.is_none_or(|(bc, _)| c < bc) {
                    best = Some((c, k));
                }
            }
            if let Some((_, k)) = best {
                mapping[v] = k;
                loads[cur] -= w;
                loads[k] += w;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }

    // Partition and recurse.
    let mut per_child: Vec<Vec<crate::graph::QgVertex>> = vec![Vec::new(); n_children];
    for (i, v) in qg.vertices.iter().enumerate() {
        if v.queries.is_empty() {
            continue;
        }
        let target = mapping[i];
        if target < n_children {
            per_child[target].extend(graphs.expand(v));
        }
    }
    sw.stop();
    timing.total += sw.elapsed();
    let own = sw.elapsed();
    let mut child_max = std::time::Duration::ZERO;
    {
        let out: &mut Assignment = local.as_mut().unwrap_or(next);
        for (pos, child_work) in per_child.into_iter().enumerate() {
            let child = node.children[pos];
            let t = adapt_down(
                d,
                config,
                child,
                child_work,
                graphs,
                current,
                out,
                timing,
                seed,
                cache.as_deref_mut(),
            );
            child_max = child_max.max(t);
        }
    }
    if let (Some(c), Some(local)) = (cache, local) {
        c.insert(coord, fp.expect("fp computed when cache is active"), &local);
        for (q, p) in local.iter() {
            next.place(q, p);
        }
    }
    own + child_max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::CoordinatorTree;
    use cosmos_net::{Deployment, NodeId, TransitStubConfig};
    use cosmos_pubsub::{SubstreamTable, TrafficModel};
    use cosmos_query::QueryId;
    use cosmos_util::rng::rng_for;
    use cosmos_util::stats::stddev;
    use cosmos_util::InterestSet;
    use rand::Rng;

    const U: usize = 160;

    fn fixture(seed: u64) -> (Deployment, SubstreamTable) {
        let topo = TransitStubConfig::small().generate(seed);
        let dep = Deployment::assign(topo, 4, 8, seed);
        let table = SubstreamTable::random(U, 4, 1.0, 10.0, seed);
        (dep, table)
    }

    fn random_specs(
        dep: &Deployment,
        table: &SubstreamTable,
        n: usize,
        seed: u64,
    ) -> Vec<QuerySpec> {
        let mut rng = rng_for(seed, "adapt-specs");
        (0..n)
            .map(|i| {
                let k = rng.gen_range(3..9);
                let interest = InterestSet::from_indices(U, (0..k).map(|_| rng.gen_range(0..U)));
                let load = interest.weighted_len(table.rates()) / 20.0;
                QuerySpec {
                    id: QueryId(i as u64),
                    interest,
                    load,
                    proxy: dep.processors()[rng.gen_range(0..dep.processors().len())],
                    result_rate: 0.5,
                    state_size: 1.0 + (i % 5) as f64,
                }
            })
            .collect()
    }

    fn random_assignment(specs: &[QuerySpec], dep: &Deployment, seed: u64) -> Assignment {
        let mut rng = rng_for(seed, "rand-assign");
        specs
            .iter()
            .map(|q| (q.id, dep.processors()[rng.gen_range(0..dep.processors().len())]))
            .collect()
    }

    fn comm_cost(
        dep: &Deployment,
        table: &SubstreamTable,
        specs: &[QuerySpec],
        a: &Assignment,
    ) -> f64 {
        let model = TrafficModel::new(dep, table);
        let interests = a.interests(specs, dep.processors(), U);
        let flows = specs.iter().map(|q| (a.processor_of(q.id).unwrap(), q.proxy, q.result_rate));
        model.source_delivery_cost(&interests) + model.result_unicast_cost(flows)
    }

    /// Very skewed assignment: everything on one processor.
    fn skewed_assignment(specs: &[QuerySpec], node: NodeId) -> Assignment {
        specs.iter().map(|q| (q.id, node)).collect()
    }

    #[test]
    fn adaptation_preserves_all_queries() {
        let (dep, table) = fixture(1);
        let tree = CoordinatorTree::build(&dep, 2);
        let d = Distributor::new(&dep, &tree, &table);
        let specs = random_specs(&dep, &table, 60, 2);
        let current = random_assignment(&specs, &dep, 3);
        let out = adapt_wholesale(&d, &specs, &current, &AdaptConfig::default(), 4);
        assert_eq!(out.assignment.len(), 60);
        for q in &specs {
            assert!(dep.processors().contains(&out.assignment.processor_of(q.id).unwrap()));
        }
    }

    #[test]
    fn adaptation_rebalances_a_skewed_assignment() {
        let (dep, table) = fixture(2);
        let tree = CoordinatorTree::build(&dep, 2);
        let d = Distributor::new(&dep, &tree, &table);
        let specs = random_specs(&dep, &table, 80, 5);
        let current = skewed_assignment(&specs, dep.processors()[0]);
        let before = stddev(&current.loads(&specs, dep.processors()));
        let mut a = current.clone();
        for round in 0..4 {
            a = adapt_wholesale(&d, &specs, &a, &AdaptConfig::default(), 10 + round).assignment;
        }
        let after = stddev(&a.loads(&specs, dep.processors()));
        assert!(after < before * 0.5, "load stddev should drop substantially: {before} -> {after}");
    }

    #[test]
    fn adaptation_reduces_comm_cost_of_random_start() {
        let (dep, table) = fixture(3);
        let tree = CoordinatorTree::build(&dep, 2);
        let d = Distributor::new(&dep, &tree, &table);
        let specs = random_specs(&dep, &table, 80, 6);
        let current = random_assignment(&specs, &dep, 7);
        let before = comm_cost(&dep, &table, &specs, &current);
        let mut a = current.clone();
        for round in 0..5 {
            a = adapt_wholesale(&d, &specs, &a, &AdaptConfig::default(), 20 + round).assignment;
        }
        let after = comm_cost(&dep, &table, &specs, &a);
        assert!(after < before, "adaptation should reduce communication cost: {before} -> {after}");
    }

    #[test]
    fn stable_assignment_migrates_little() {
        let (dep, table) = fixture(4);
        let tree = CoordinatorTree::build(&dep, 2);
        let d = Distributor::new(&dep, &tree, &table);
        let specs = random_specs(&dep, &table, 60, 8);
        // Start from the hierarchical initial distribution (already good).
        let initial = d.distribute(&specs, 9).assignment;
        let mut a = initial.clone();
        for round in 0..3 {
            a = adapt_wholesale(&d, &specs, &a, &AdaptConfig::default(), 30 + round).assignment;
        }
        let churn = a.migrations_from(&initial);
        assert!(
            churn <= specs.len() / 2,
            "a good assignment should not churn heavily ({churn}/{} moved)",
            specs.len()
        );
    }

    #[test]
    fn migration_accounting_is_consistent() {
        let (dep, table) = fixture(5);
        let tree = CoordinatorTree::build(&dep, 2);
        let d = Distributor::new(&dep, &tree, &table);
        let specs = random_specs(&dep, &table, 40, 11);
        let current = random_assignment(&specs, &dep, 12);
        let out = adapt_wholesale(&d, &specs, &current, &AdaptConfig::default(), 13);
        assert_eq!(out.migrations, out.assignment.migrations_from(&current));
        if out.migrations == 0 {
            assert_eq!(out.moved_state, 0.0);
        } else {
            assert!(out.moved_state > 0.0);
        }
    }

    #[test]
    fn empty_specs_no_op() {
        let (dep, table) = fixture(6);
        let tree = CoordinatorTree::build(&dep, 2);
        let d = Distributor::new(&dep, &tree, &table);
        let out = adapt_wholesale(&d, &[], &Assignment::new(), &AdaptConfig::default(), 0);
        assert_eq!(out.migrations, 0);
        assert!(out.assignment.is_empty());
    }

    #[test]
    fn scoring_threads_cannot_change_the_outcome() {
        // Candidate scoring is a pure order-preserving map, so any thread
        // count must produce the identical assignment — the env
        // fingerprint excludes `scoring_threads` on this guarantee.
        let (dep, table) = fixture(7);
        let tree = CoordinatorTree::build(&dep, 2);
        let d = Distributor::new(&dep, &tree, &table);
        let specs = random_specs(&dep, &table, 80, 14);
        let current = skewed_assignment(&specs, dep.processors()[0]);
        let seq = AdaptConfig { scoring_threads: 1, ..AdaptConfig::default() };
        let par = AdaptConfig { scoring_threads: 4, ..AdaptConfig::default() };
        let a = adapt_wholesale(&d, &specs, &current, &seq, 15);
        let b = adapt_wholesale(&d, &specs, &current, &par, 15);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.moved_state.to_bits(), b.moved_state.to_bits());
    }

    #[test]
    fn config_validation_names_the_offending_knob() {
        let bad = AdaptConfig { x_fraction: f64::NAN, ..AdaptConfig::default() };
        assert!(bad.validate().unwrap_err().contains("x_fraction"));
        let bad = AdaptConfig { fill_fraction: 1.5, ..AdaptConfig::default() };
        assert!(bad.validate().unwrap_err().contains("fill_fraction"));
        let bad = AdaptConfig { max_moves_factor: 0, ..AdaptConfig::default() };
        assert!(bad.validate().unwrap_err().contains("max_moves_factor"));
        let bad = AdaptConfig { min_improvement: -0.1, ..AdaptConfig::default() };
        assert!(bad.validate().unwrap_err().contains("min_improvement"));
        let bad = AdaptConfig { scoring_threads: 0, ..AdaptConfig::default() };
        assert!(bad.validate().unwrap_err().contains("scoring_threads"));
    }

    #[test]
    #[should_panic(expected = "invalid AdaptConfig")]
    fn invalid_config_panics_at_the_adaptation_round() {
        let (dep, table) = fixture(8);
        let tree = CoordinatorTree::build(&dep, 2);
        let d = Distributor::new(&dep, &tree, &table);
        let bad = AdaptConfig { x_fraction: -1.0, ..AdaptConfig::default() };
        let _ = adapt_wholesale(&d, &[], &Assignment::new(), &bad, 0);
    }
}
