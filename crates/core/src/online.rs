//! Online insertion of new queries (§3.6).
//!
//! "A new query is first routed to the root coordinator which then routes
//! it to one of its children. The routing is done level by level until the
//! query is assigned to a processor. At each coordinator, the query is
//! added to the query graph and the weights of the new edges are estimated.
//! Then the new vertex is mapped to a vertex in the network graph such that
//! the resulting WEC is minimized."
//!
//! The edge-weight estimation at each coordinator uses per-child *aggregate*
//! state (union interest + total load): the coarse-grained information the
//! paper credits for the root's scalability to ">800,000 queries per
//! second". Smaller `k` means fewer children per coordinator and therefore
//! higher per-coordinator throughput — at the price of more levels and more
//! coarsening (Figure 9's trade-off).

use crate::hierarchy::CoordinatorTree;
use crate::spec::{Assignment, QuerySpec};
use cosmos_net::{Deployment, NodeId};
use cosmos_pubsub::SubstreamTable;
use cosmos_util::InterestSet;

/// Maximum interest clusters tracked per child (the online analogue of the
/// coarse q-vertices the paper adds new queries to — a single union
/// interest per child saturates and stops discriminating between children).
const MAX_CLUSTERS: usize = 32;

/// Per-coordinator routing state for online insertion.
#[derive(Debug, Clone)]
struct CoordState {
    /// Bounded set of interest clusters per child.
    child_clusters: Vec<Vec<InterestSet>>,
    /// Union interest per child — what the child's subtree already
    /// subscribes to. Substreams in this union are *free* for a new query
    /// placed there (the Pub/Sub already delivers them), so routing charges
    /// only the residual interest.
    child_union: Vec<InterestSet>,
    /// Total load per child.
    child_load: Vec<f64>,
}

impl CoordState {
    /// Folds a query's interest into the closest cluster of `child` (or a
    /// new cluster while capacity lasts).
    fn absorb(&mut self, child: usize, interest: &InterestSet, rates: &[f64]) {
        let clusters = &mut self.child_clusters[child];
        let best = clusters
            .iter()
            .enumerate()
            .map(|(c, cl)| (c, interest.weighted_overlap(cl, rates)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        match best {
            Some((c, w)) if w > 0.0 || clusters.len() >= MAX_CLUSTERS => {
                clusters[c].union_with(interest);
            }
            _ if clusters.len() < MAX_CLUSTERS => clusters.push(interest.clone()),
            _ => clusters[0].union_with(interest),
        }
    }

    /// The strongest cluster affinity of `interest` within `child`.
    fn affinity(&self, child: usize, interest: &InterestSet, rates: &[f64]) -> f64 {
        self.child_clusters[child]
            .iter()
            .map(|cl| interest.weighted_overlap(cl, rates))
            .fold(0.0, f64::max)
    }
}

/// Routes newly arriving queries down the coordinator tree.
///
/// # Examples
///
/// ```
/// use cosmos_core::online::OnlineRouter;
/// use cosmos_core::hierarchy::CoordinatorTree;
/// use cosmos_core::spec::QuerySpec;
/// use cosmos_net::{Deployment, TransitStubConfig};
/// use cosmos_pubsub::SubstreamTable;
/// use cosmos_query::QueryId;
/// use cosmos_util::InterestSet;
///
/// let topo = TransitStubConfig::small().generate(1);
/// let dep = Deployment::assign(topo, 3, 6, 1);
/// let tree = CoordinatorTree::build(&dep, 2);
/// let table = SubstreamTable::random(100, 3, 1.0, 10.0, 1);
/// let mut router = OnlineRouter::new(&dep, &tree, &table, 0.1);
/// let q = QuerySpec {
///     id: QueryId(1),
///     interest: InterestSet::from_indices(100, [5usize, 6]),
///     load: 1.0,
///     proxy: dep.processors()[0],
///     result_rate: 0.5,
///     state_size: 1.0,
/// };
/// let processor = router.insert(&q);
/// assert!(dep.processors().contains(&processor));
/// ```
#[derive(Debug)]
pub struct OnlineRouter<'a> {
    dep: &'a Deployment,
    tree: &'a CoordinatorTree,
    table: &'a SubstreamTable,
    alpha: f64,
    states: Vec<CoordState>,
    total_load: f64,
}

impl<'a> OnlineRouter<'a> {
    /// Creates a router with empty aggregates.
    pub fn new(
        dep: &'a Deployment,
        tree: &'a CoordinatorTree,
        table: &'a SubstreamTable,
        alpha: f64,
    ) -> Self {
        let universe = table.len();
        let states = (0..tree.len())
            .map(|i| {
                let n = tree.node(i).children.len();
                CoordState {
                    child_clusters: vec![Vec::new(); n],
                    child_union: vec![InterestSet::new(universe); n],
                    child_load: vec![0.0; n],
                }
            })
            .collect();
        Self { dep, tree, table, alpha, states, total_load: 0.0 }
    }

    /// Seeds aggregates from an existing assignment (used when online
    /// insertion follows an initial distribution).
    pub fn seed_from(&mut self, specs: &[QuerySpec], assignment: &Assignment) {
        for spec in specs {
            let Some(proc) = assignment.processor_of(spec.id) else {
                continue;
            };
            self.account(spec, proc);
        }
    }

    /// Total load currently accounted.
    pub fn total_load(&self) -> f64 {
        self.total_load
    }

    /// Adds `spec`'s aggregates along the path from the root to `proc`.
    fn account(&mut self, spec: &QuerySpec, proc: NodeId) {
        self.total_load += spec.load;
        let mut coord = self.tree.root();
        loop {
            let node = self.tree.node(coord);
            if node.children.is_empty() {
                break;
            }
            let pos = self
                .tree
                .covering_child(coord, proc)
                .expect("processor must be covered by the root");
            let state = &mut self.states[coord];
            state.absorb(pos, &spec.interest, self.table.rates());
            state.child_union[pos].union_with(&spec.interest);
            state.child_load[pos] += spec.load;
            coord = node.children[pos];
        }
    }

    /// Routing decision at a single coordinator: the child minimizing the
    /// estimated WEC increase, subject to the load constraint. Exposed so
    /// benchmarks can time the *root* decision in isolation (Figure 9(b)).
    pub fn route_at(&self, coord: usize, spec: &QuerySpec) -> usize {
        let node = self.tree.node(coord);
        let state = &self.states[coord];
        let n = node.children.len();
        assert!(n > 0, "route_at called on a leaf");
        let rates = self.table.rates();
        // Affinity with each child's strongest interest cluster.
        let overlaps: Vec<f64> = (0..n).map(|i| state.affinity(i, &spec.interest, rates)).collect();

        let total_cap: f64 = node.children.iter().map(|&c| self.tree.node(c).capability).sum();
        let new_total = self.total_load + spec.load;

        let mut best_feasible: Option<(f64, usize)> = None;
        let mut best_violation: Option<(f64, f64, usize)> = None;
        for i in 0..n {
            let child = self.tree.node(node.children[i]);
            let rep = child.representative;
            // WEC delta: *marginal* source edges (substreams the child's
            // subtree already receives are free under the Pub/Sub) + proxy
            // edge + overlap edges to the other children's aggregates.
            let mut cost = 0.0;
            for s in spec.interest.iter() {
                if !state.child_union[i].contains(s) {
                    let src = self.dep.sources()[self.table.source_index(s)];
                    cost += rates[s] * self.dep.distance(rep, src);
                }
            }
            cost += spec.result_rate * self.dep.distance(rep, spec.proxy);
            for (j, &ov) in overlaps.iter().enumerate() {
                if j != i && ov > 0.0 {
                    let other = self.tree.node(node.children[j]).representative;
                    cost += ov * self.dep.distance(rep, other);
                }
            }
            // Load constraint against this subtree's share of the total.
            let subtree_load: f64 = node.children.iter().map(|&c| self.subtree_load(c)).sum();
            let share = new_total.min(subtree_load + spec.load); // local view
            let limit = (1.0 + self.alpha) * child.capability * share / total_cap.max(1e-12);
            let load = state.child_load[i] + spec.load;
            if load <= limit + 1e-12 && best_feasible.is_none_or(|(c, _)| cost < c) {
                best_feasible = Some((cost, i));
            }
            // Violations compare lexicographically: least violation first,
            // WEC cost as the tie-breaker.
            let violation = load - limit;
            if best_violation.is_none_or(|(v, c, _)| {
                violation < v - 1e-12 || (violation < v + 1e-12 && cost < c)
            }) {
                best_violation = Some((violation, cost, i));
            }
        }
        best_feasible
            .map(|(_, i)| i)
            .or(best_violation.map(|(_, _, i)| i))
            .expect("coordinator has children")
    }

    fn subtree_load(&self, coord: usize) -> f64 {
        let node = self.tree.node(coord);
        if node.children.is_empty() {
            // Leaf (processor) loads are tracked at the parent.
            match node.parent {
                Some(p) => {
                    let pos = self.tree.node(p).children.iter().position(|&c| c == coord);
                    pos.map(|i| self.states[p].child_load[i]).unwrap_or(0.0)
                }
                None => 0.0,
            }
        } else {
            self.states[coord].child_load.iter().sum()
        }
    }

    /// Inserts a new query: routes it level by level from the root to a
    /// processor, updating aggregates, and returns the chosen processor.
    pub fn insert(&mut self, spec: &QuerySpec) -> NodeId {
        let mut coord = self.tree.root();
        loop {
            let node = self.tree.node(coord);
            if node.children.is_empty() {
                let proc = node.representative;
                self.account(spec, proc);
                return proc;
            }
            let pos = self.route_at(coord, spec);
            coord = node.children[pos];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_net::TransitStubConfig;
    use cosmos_query::QueryId;
    use cosmos_util::rng::rng_for;
    use rand::Rng;

    const U: usize = 120;

    fn fixture(seed: u64) -> (Deployment, SubstreamTable) {
        let topo = TransitStubConfig::small().generate(seed);
        let dep = Deployment::assign(topo, 4, 8, seed);
        let table = SubstreamTable::random(U, 4, 1.0, 10.0, seed);
        (dep, table)
    }

    fn spec(id: u64, bits: &[usize], load: f64, proxy: NodeId) -> QuerySpec {
        QuerySpec {
            id: QueryId(id),
            interest: InterestSet::from_indices(U, bits.iter().copied()),
            load,
            proxy,
            result_rate: 0.5,
            state_size: 1.0,
        }
    }

    #[test]
    fn insert_lands_on_a_processor() {
        let (dep, table) = fixture(1);
        let tree = CoordinatorTree::build(&dep, 2);
        let mut router = OnlineRouter::new(&dep, &tree, &table, 0.1);
        for i in 0..30 {
            let q = spec(i, &[(i as usize) % U, (i as usize * 3) % U], 1.0, dep.processors()[0]);
            let p = router.insert(&q);
            assert!(dep.processors().contains(&p));
        }
        assert!((router.total_load() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn similar_queries_cluster_together() {
        let (dep, table) = fixture(2);
        let tree = CoordinatorTree::build(&dep, 2);
        let mut router = OnlineRouter::new(&dep, &tree, &table, 0.5);
        // Insert a batch of zero-load queries with identical interest:
        // overlap edges should pull them to the same processor (zero load
        // keeps eqn 3.1 from forcing a spread).
        let mut homes = std::collections::HashSet::new();
        for i in 0..4 {
            let q = spec(i, &[5, 6, 7, 8], 0.0, dep.processors()[3]);
            homes.insert(router.insert(&q));
        }
        assert_eq!(homes.len(), 1, "identical queries should co-locate: {homes:?}");
    }

    #[test]
    fn load_spreads_when_capacity_exceeded() {
        let (dep, table) = fixture(3);
        let tree = CoordinatorTree::build(&dep, 2);
        let mut router = OnlineRouter::new(&dep, &tree, &table, 0.1);
        let mut rng = rng_for(3, "spread");
        let mut per_proc: std::collections::HashMap<NodeId, f64> = Default::default();
        for i in 0..200 {
            let bits = [rng.gen_range(0..U), rng.gen_range(0..U)];
            let q = spec(i, &bits, 1.0, dep.processors()[rng.gen_range(0..8usize)]);
            let p = router.insert(&q);
            *per_proc.entry(p).or_insert(0.0) += 1.0;
        }
        // With 200 unit loads and 8 processors, nobody should be wildly
        // overloaded (limit is soft during online routing).
        let max = per_proc.values().cloned().fold(0.0, f64::max);
        assert!(max <= 80.0, "one processor hoards {max} of 200 queries");
        assert!(per_proc.len() >= 4, "queries landed on too few processors");
    }

    #[test]
    fn seeding_matches_manual_insertion() {
        let (dep, table) = fixture(4);
        let tree = CoordinatorTree::build(&dep, 2);
        let specs: Vec<QuerySpec> =
            (0..10).map(|i| spec(i, &[i as usize], 1.0, dep.processors()[0])).collect();
        let mut r1 = OnlineRouter::new(&dep, &tree, &table, 0.1);
        let mut assignment = Assignment::new();
        for q in &specs {
            let p = r1.insert(q);
            assignment.place(q.id, p);
        }
        let mut r2 = OnlineRouter::new(&dep, &tree, &table, 0.1);
        r2.seed_from(&specs, &assignment);
        assert!((r1.total_load() - r2.total_load()).abs() < 1e-9);
        // The next decision must coincide.
        let probe = spec(99, &[3, 4, 5], 1.0, dep.processors()[1]);
        assert_eq!(r1.route_at(tree.root(), &probe), r2.route_at(tree.root(), &probe));
    }

    #[test]
    fn proxy_pull_affects_placement() {
        let (dep, table) = fixture(5);
        let tree = CoordinatorTree::build(&dep, 2);
        let mut router = OnlineRouter::new(&dep, &tree, &table, 1.0);
        // A query with huge result rate and no interest should sit at (or
        // very near) its proxy.
        let q = QuerySpec {
            id: QueryId(1),
            interest: InterestSet::new(U),
            load: 0.1,
            proxy: dep.processors()[5],
            result_rate: 1000.0,
            state_size: 1.0,
        };
        let p = router.insert(&q);
        // Hierarchical routing steers by cluster representatives, so the
        // exact nearest processor is not guaranteed — but the choice must
        // clearly beat the average (i.e. random placement).
        let d_proxy = dep.distance(p, dep.processors()[5]);
        let avg: f64 =
            dep.processors().iter().map(|&o| dep.distance(o, dep.processors()[5])).sum::<f64>()
                / dep.processors().len() as f64;
        assert!(d_proxy <= avg, "proxy pull too weak: placed {d_proxy} away, average is {avg}");
    }
}
