//! The query-graph / network-graph model of §3.1.2.
//!
//! **Network graph** `NG = {Vn, En, Wn}`: one vertex per mappable target
//! (child cluster or processor, weighted by capability) plus *anchor*
//! vertices for external network nodes referenced by the query graph
//! (sources, remote proxies) that queries cannot be mapped to. Edge weights
//! are pairwise latencies.
//!
//! **Query graph** `QG = {Vq, Eq, Wq}`: q-vertices (queries, weighted by
//! load) and n-vertices (network nodes, weight 0). Edges:
//!
//! - q-vertex ↔ source n-vertex: the rate the query requests from that
//!   source;
//! - q-vertex ↔ proxy n-vertex: the query's result rate;
//! - q-vertex ↔ q-vertex: the rate of data *both* queries are interested
//!   in — the Pub/Sub sharing term, "to penalize allocation schemes that
//!   distribute the two queries to two nodes that are very far away".
//!
//! All three kinds reduce to one formula ([`edge_weight`]): the weighted
//! overlap of the endpoint interests (a source n-vertex's "interest" is the
//! substream set it originates) plus any result flows directed at the other
//! endpoint's node. This uniformity is what lets coarsening *re-estimate*
//! merged edges exactly (Algorithm 1, line 11).

use cosmos_net::NodeId;
use cosmos_query::QueryId;
use cosmos_util::InterestSet;
use std::collections::BTreeMap;

/// Is a vertex a query vertex or a network (pinned) vertex?
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VertexKind {
    /// A (possibly coarse) group of queries; mappable.
    Query,
    /// A network node (source or proxy); pinned to wherever that node lives.
    Net(NodeId),
}

/// A vertex of the query graph.
#[derive(Debug, Clone)]
pub struct QgVertex {
    /// Query or pinned network vertex.
    pub kind: VertexKind,
    /// Constituent query ids (empty for pure n-vertices).
    pub queries: Vec<QueryId>,
    /// Total estimated load.
    pub weight: f64,
    /// Union data interest. For a source n-vertex: the substreams it
    /// originates.
    pub interest: InterestSet,
    /// Total operator state size (prices migration).
    pub state_size: f64,
    /// Result flows `(proxy node, rate)` of the constituent queries.
    pub result_flows: Vec<(NodeId, f64)>,
    /// Which coordinator produced this (coarse) vertex, and at what output
    /// index — the paper's vertex *tag*, used for uncoarsening.
    pub tag: Option<(usize, usize)>,
}

impl QgVertex {
    /// A q-vertex for a single query.
    pub fn for_query(
        id: QueryId,
        interest: InterestSet,
        load: f64,
        proxy: NodeId,
        result_rate: f64,
        state_size: f64,
    ) -> Self {
        Self {
            kind: VertexKind::Query,
            queries: vec![id],
            weight: load,
            interest,
            state_size,
            result_flows: vec![(proxy, result_rate)],
            tag: None,
        }
    }

    /// An n-vertex for a network node. A data source passes the substream
    /// set it originates as `interest`; a proxy passes an empty set.
    pub fn for_net(node: NodeId, interest: InterestSet) -> Self {
        Self {
            kind: VertexKind::Net(node),
            queries: Vec::new(),
            weight: 0.0,
            interest,
            state_size: 0.0,
            result_flows: Vec::new(),
            tag: None,
        }
    }

    /// Returns `true` for n-vertices (the paper's `is_n`).
    pub fn is_net(&self) -> bool {
        matches!(self.kind, VertexKind::Net(_))
    }

    /// The pinned network node, for n-vertices.
    pub fn net_node(&self) -> Option<NodeId> {
        match self.kind {
            VertexKind::Net(n) => Some(n),
            VertexKind::Query => None,
        }
    }

    /// Merges `other` into `self` (Algorithm 1's vertex collapse):
    /// weights/state add, interests union, queries and result flows
    /// concatenate, and n-vertex-ness is sticky.
    pub fn absorb(&mut self, other: &QgVertex) {
        if other.is_net() && !self.is_net() {
            self.kind = other.kind.clone();
        }
        self.queries.extend(other.queries.iter().copied());
        self.weight += other.weight;
        self.interest.union_with(&other.interest);
        self.state_size += other.state_size;
        self.result_flows.extend(other.result_flows.iter().cloned());
    }
}

/// The unified query-graph edge weight between two vertices: weighted
/// interest overlap plus result flows directed at the other endpoint.
/// Result flows toward a vertex's *own* node never appear here (the paper:
/// a query co-located with its proxy needs no result edge).
pub fn edge_weight(a: &QgVertex, b: &QgVertex, rates: &[f64]) -> f64 {
    let mut w = a.interest.weighted_overlap(&b.interest, rates);
    if let Some(node) = b.net_node() {
        w += a.result_flows.iter().filter(|(p, _)| *p == node).map(|(_, r)| *r).sum::<f64>();
    }
    if let Some(node) = a.net_node() {
        w += b.result_flows.iter().filter(|(p, _)| *p == node).map(|(_, r)| *r).sum::<f64>();
    }
    w
}

/// The query graph: vertices plus a weighted adjacency.
#[derive(Debug, Clone, Default)]
pub struct QueryGraph {
    /// Vertices; q-vertices and n-vertices interleaved.
    pub vertices: Vec<QgVertex>,
    // Ordered adjacency: neighbor iteration must be deterministic so that
    // derived-vertex creation and floating-point cost sums are bit-stable
    // across runs — the incremental optimizer's caches are only valid
    // because recomputation is bit-reproducible.
    adj: Vec<BTreeMap<usize, f64>>,
}

impl QueryGraph {
    /// Creates a graph with the given vertices and no edges.
    pub fn new(vertices: Vec<QgVertex>) -> Self {
        let n = vertices.len();
        Self { vertices, adj: vec![BTreeMap::new(); n] }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Returns `true` when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Sets (or overwrites) an undirected edge; zero/negative weights clear.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops.
    pub fn set_edge(&mut self, i: usize, j: usize, w: f64) {
        assert!(i < self.len() && j < self.len(), "edge endpoint out of range");
        assert_ne!(i, j, "self-loops are meaningless in a query graph");
        if w > 0.0 {
            self.adj[i].insert(j, w);
            self.adj[j].insert(i, w);
        } else {
            self.adj[i].remove(&j);
            self.adj[j].remove(&i);
        }
    }

    /// The weight of edge `{i, j}`, or 0 when absent.
    pub fn edge(&self, i: usize, j: usize) -> f64 {
        self.adj[i].get(&j).copied().unwrap_or(0.0)
    }

    /// Iterates over `(neighbor, weight)` of vertex `i`.
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.adj[i].iter().map(|(&j, &w)| (j, w))
    }

    /// Degree of vertex `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.adj[i].len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|m| m.len()).sum::<usize>() / 2
    }

    /// Total q-vertex weight (`Wᵥq` in eqn 3.1 — n-vertices weigh 0 by
    /// construction, so this is simply the total vertex weight).
    pub fn total_weight(&self) -> f64 {
        self.vertices.iter().map(|v| v.weight).sum()
    }

    /// Indices of q-vertices.
    pub fn query_vertices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).filter(|&i| !self.vertices[i].is_net())
    }

    /// Recomputes the weights of all edges incident to `i` against its
    /// current neighbor set (Algorithm 1's re-estimation after a collapse).
    pub fn reestimate_edges_of(&mut self, i: usize, rates: &[f64]) {
        let neighbors: Vec<usize> = self.adj[i].keys().copied().collect();
        for j in neighbors {
            let w = edge_weight(&self.vertices[i], &self.vertices[j], rates);
            self.set_edge(i, j, w);
        }
    }
}

/// A vertex of the network graph.
#[derive(Debug, Clone)]
pub struct NetVertex {
    /// The representative physical node (cluster median, processor, source).
    pub node: NodeId,
    /// Aggregate capability (`ci`; 0 for anchors such as sources).
    pub capability: f64,
}

/// The network graph at one coordinator: mappable targets (its children)
/// followed by pinned anchors (external nodes the query graph references).
#[derive(Debug, Clone)]
pub struct NetworkGraph {
    vertices: Vec<NetVertex>,
    n_targets: usize,
    /// Row-major pairwise distances.
    dist: Vec<f64>,
}

impl NetworkGraph {
    /// Builds a network graph from targets and anchors, with distances from
    /// `distance(a, b)` over representative nodes.
    pub fn build(
        targets: Vec<NetVertex>,
        anchors: Vec<NetVertex>,
        distance: impl Fn(NodeId, NodeId) -> f64,
    ) -> Self {
        let n_targets = targets.len();
        let vertices: Vec<NetVertex> = targets.into_iter().chain(anchors).collect();
        let m = vertices.len();
        let mut dist = vec![0.0; m * m];
        for i in 0..m {
            for j in 0..m {
                dist[i * m + j] =
                    if i == j { 0.0 } else { distance(vertices[i].node, vertices[j].node) };
            }
        }
        Self { vertices, n_targets, dist }
    }

    /// Total number of vertices (targets + anchors).
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Returns `true` when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Number of mappable targets (indices `0..n_targets`).
    pub fn target_count(&self) -> usize {
        self.n_targets
    }

    /// The vertex at index `k`.
    pub fn vertex(&self, k: usize) -> &NetVertex {
        &self.vertices[k]
    }

    /// Distance between vertices `k` and `l`.
    pub fn distance(&self, k: usize, l: usize) -> f64 {
        self.dist[k * self.len() + l]
    }

    /// Index of the vertex representing `node`, if present.
    pub fn index_of(&self, node: NodeId) -> Option<usize> {
        self.vertices.iter().position(|v| v.node == node)
    }

    /// Total capability of the targets (`Wᵥn` in eqn 3.1).
    pub fn total_capability(&self) -> f64 {
        self.vertices[..self.n_targets].iter().map(|v| v.capability).sum()
    }

    /// Per-target load limits under eqn 3.1:
    /// `(1 + α) · c_k · W_q / C_total`.
    pub fn load_limits(&self, total_query_weight: f64, alpha: f64) -> Vec<f64> {
        let total_cap = self.total_capability();
        self.vertices[..self.n_targets]
            .iter()
            .map(|v| {
                if total_cap <= 0.0 {
                    0.0
                } else {
                    (1.0 + alpha) * v.capability * total_query_weight / total_cap
                }
            })
            .collect()
    }
}

/// The Weighted Edge Cut of a mapping (eqn 3.2):
/// `Σ_{(i,j) ∈ Eq} Wq(e_ij) · Wn(map(i), map(j))`.
///
/// # Panics
///
/// Panics if `mapping.len() != qg.len()` or any image is out of range.
pub fn wec(qg: &QueryGraph, ng: &NetworkGraph, mapping: &[usize]) -> f64 {
    assert_eq!(mapping.len(), qg.len(), "mapping must cover every vertex");
    let mut total = 0.0;
    for i in 0..qg.len() {
        for (j, w) in qg.neighbors(i) {
            if j > i {
                total += w * ng.distance(mapping[i], mapping[j]);
            }
        }
    }
    total
}

/// Per-target loads of a mapping (anchors excluded).
pub fn target_loads(qg: &QueryGraph, ng: &NetworkGraph, mapping: &[usize]) -> Vec<f64> {
    let mut loads = vec![0.0; ng.target_count()];
    for (i, &m) in mapping.iter().enumerate() {
        if m < ng.target_count() {
            loads[m] += qg.vertices[i].weight;
        }
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(universe: usize, bits: &[usize]) -> InterestSet {
        InterestSet::from_indices(universe, bits.iter().copied())
    }

    #[test]
    fn edge_weight_overlap_only() {
        let rates = vec![2.0; 8];
        let a = QgVertex::for_query(QueryId(1), iv(8, &[0, 1, 2]), 1.0, NodeId(9), 0.5, 1.0);
        let b = QgVertex::for_query(QueryId(2), iv(8, &[2, 3]), 1.0, NodeId(9), 0.5, 1.0);
        // Overlap = substream 2 at rate 2; result flows both target node 9
        // but neither vertex *is* node 9.
        assert_eq!(edge_weight(&a, &b, &rates), 2.0);
    }

    #[test]
    fn edge_weight_to_source_and_proxy() {
        let rates = vec![1.0; 8];
        let q = QgVertex::for_query(QueryId(1), iv(8, &[0, 1, 4]), 1.0, NodeId(9), 0.5, 1.0);
        let source = QgVertex::for_net(NodeId(3), iv(8, &[0, 1, 2, 3]));
        let proxy = QgVertex::for_net(NodeId(9), InterestSet::new(8));
        assert_eq!(edge_weight(&q, &source, &rates), 2.0); // substreams 0, 1
        assert_eq!(edge_weight(&q, &proxy, &rates), 0.5); // result flow
        assert_eq!(edge_weight(&source, &proxy, &rates), 0.0);
    }

    #[test]
    fn absorb_accumulates_and_is_net_sticky() {
        let rates = vec![1.0; 8];
        let mut q = QgVertex::for_query(QueryId(1), iv(8, &[0]), 1.0, NodeId(9), 0.5, 2.0);
        let q2 = QgVertex::for_query(QueryId(2), iv(8, &[1]), 3.0, NodeId(8), 0.25, 1.0);
        q.absorb(&q2);
        assert_eq!(q.weight, 4.0);
        assert_eq!(q.state_size, 3.0);
        assert_eq!(q.queries, vec![QueryId(1), QueryId(2)]);
        assert_eq!(q.interest.len(), 2);
        assert!(!q.is_net());
        let net = QgVertex::for_net(NodeId(5), InterestSet::new(8));
        q.absorb(&net);
        assert!(q.is_net());
        assert_eq!(q.net_node(), Some(NodeId(5)));
        // Merged vertex keeps result flows for edge computation.
        let proxy9 = QgVertex::for_net(NodeId(9), InterestSet::new(8));
        assert_eq!(edge_weight(&q, &proxy9, &rates), 0.5);
    }

    #[test]
    fn graph_edges_and_reestimation() {
        let rates = vec![1.0; 8];
        let v0 = QgVertex::for_query(QueryId(1), iv(8, &[0, 1]), 1.0, NodeId(9), 0.0, 1.0);
        let v1 = QgVertex::for_query(QueryId(2), iv(8, &[1, 2]), 1.0, NodeId(9), 0.0, 1.0);
        let v2 = QgVertex::for_query(QueryId(3), iv(8, &[5]), 1.0, NodeId(9), 0.0, 1.0);
        let mut g = QueryGraph::new(vec![v0, v1, v2]);
        g.set_edge(0, 1, edge_weight(&g.vertices[0], &g.vertices[1], &rates));
        assert_eq!(g.edge(0, 1), 1.0);
        assert_eq!(g.edge(1, 0), 1.0);
        assert_eq!(g.edge(0, 2), 0.0);
        assert_eq!(g.edge_count(), 1);
        // Absorb v2 into v1 (no new overlap with v0): edge unchanged.
        let v2_clone = g.vertices[2].clone();
        g.vertices[1].absorb(&v2_clone);
        g.reestimate_edges_of(1, &rates);
        assert_eq!(g.edge(0, 1), 1.0);
        // Clearing via zero weight works.
        g.set_edge(0, 1, 0.0);
        assert_eq!(g.edge_count(), 0);
    }

    fn simple_ng() -> NetworkGraph {
        // Two targets 10 apart; one anchor 1 from target 0, 11 from target 1.
        let pos = |n: NodeId| -> f64 {
            match n.0 {
                0 => 0.0,
                1 => 10.0,
                _ => -1.0,
            }
        };
        NetworkGraph::build(
            vec![
                NetVertex { node: NodeId(0), capability: 1.0 },
                NetVertex { node: NodeId(1), capability: 3.0 },
            ],
            vec![NetVertex { node: NodeId(2), capability: 0.0 }],
            move |a, b| (pos(a) - pos(b)).abs(),
        )
    }

    #[test]
    fn network_graph_basics() {
        let ng = simple_ng();
        assert_eq!(ng.len(), 3);
        assert_eq!(ng.target_count(), 2);
        assert_eq!(ng.distance(0, 1), 10.0);
        assert_eq!(ng.distance(1, 1), 0.0);
        assert_eq!(ng.index_of(NodeId(2)), Some(2));
        assert_eq!(ng.total_capability(), 4.0);
    }

    #[test]
    fn load_limits_follow_eqn_31() {
        let ng = simple_ng();
        let limits = ng.load_limits(8.0, 0.1);
        // (1.1) * c_k * 8 / 4 = 2.2 c_k
        assert!((limits[0] - 2.2).abs() < 1e-9);
        assert!((limits[1] - 6.6).abs() < 1e-9);
    }

    #[test]
    fn wec_and_loads() {
        let rates = vec![1.0; 4];
        let q1 = QgVertex::for_query(QueryId(1), iv(4, &[0]), 2.0, NodeId(2), 1.0, 1.0);
        let q2 = QgVertex::for_query(QueryId(2), iv(4, &[0]), 3.0, NodeId(2), 1.0, 1.0);
        let anchor = QgVertex::for_net(NodeId(2), InterestSet::new(4));
        let mut g = QueryGraph::new(vec![q1, q2, anchor]);
        for i in 0..3 {
            for j in (i + 1)..3 {
                let w = edge_weight(&g.vertices[i], &g.vertices[j], &rates);
                g.set_edge(i, j, w);
            }
        }
        let ng = simple_ng();
        // q1 -> target0, q2 -> target1, anchor -> anchor(index 2).
        let mapping = vec![0, 1, 2];
        // Edges: q1-q2 overlap 1 × d(0,1)=10; q1-anchor 1 × d(0,2)=1;
        // q2-anchor 1 × d(1,2)=11.
        assert!((wec(&g, &ng, &mapping) - (10.0 + 1.0 + 11.0)).abs() < 1e-9);
        assert_eq!(target_loads(&g, &ng, &mapping), vec![2.0, 3.0]);
        // Co-locating both queries on target 0 removes the overlap cut.
        let together = vec![0, 0, 2];
        assert!((wec(&g, &ng, &together) - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut g = QueryGraph::new(vec![QgVertex::for_net(NodeId(0), InterestSet::new(1))]);
        g.set_edge(0, 0, 1.0);
    }
}
