//! Graph mapping — Algorithm 2 of the paper (§3.5).
//!
//! A greedy pass produces an initial mapping; Kernighan–Lin-style iterative
//! refinement then repeatedly remaps the q-vertex with the highest *gain*
//! (WEC reduction). Hill-climbing: a vertex with the best (possibly
//! negative) gain is still remapped, so the search can escape local minima;
//! the best mapping ever seen is restored at the start of each outer
//! iteration and returned at the end.
//!
//! The load-balancing constraint (eqn 3.1) is enforced throughout: a remap
//! is admissible only if the destination stays within its limit or the move
//! strictly improves an existing violation. As the paper notes, finding a
//! feasible mapping is itself NP-complete; the algorithm is best-effort.

use crate::graph::{target_loads, wec, NetworkGraph, QgVertex, QueryGraph};

/// Tuning knobs for the mapping algorithm.
#[derive(Debug, Clone, Copy)]
pub struct MapConfig {
    /// Allowed load imbalance (`α` in eqn 3.1). Paper: 0.1.
    pub alpha: f64,
    /// Safety cap on outer refinement iterations.
    pub max_outer: usize,
}

impl Default for MapConfig {
    fn default() -> Self {
        Self { alpha: 0.1, max_outer: 16 }
    }
}

impl MapConfig {
    /// Checks every knob, naming the offending one on failure.
    pub fn validate(&self) -> Result<(), String> {
        if !self.alpha.is_finite() || self.alpha < 0.0 {
            return Err(format!("map.alpha must be finite and non-negative, got {}", self.alpha));
        }
        Ok(())
    }
}

/// Result of mapping a query graph onto a network graph.
#[derive(Debug, Clone)]
pub struct MappingResult {
    /// `mapping[i]` = network-graph vertex hosting query-graph vertex `i`.
    pub mapping: Vec<usize>,
    /// The mapping's Weighted Edge Cut.
    pub wec: f64,
    /// Per-target loads.
    pub loads: Vec<f64>,
    /// Per-target load limits (eqn 3.1).
    pub limits: Vec<f64>,
}

impl MappingResult {
    /// Does every target respect its load limit (within `eps`)?
    pub fn is_balanced(&self, eps: f64) -> bool {
        self.loads.iter().zip(&self.limits).all(|(l, lim)| *l <= lim + eps)
    }
}

/// Where an n-vertex must be pinned: its covering target, or its anchor.
pub type PinOf<'a> = dyn Fn(&QgVertex) -> Option<usize> + 'a;

/// Cost of placing vertex `v` on target `k`, counting only neighbors that
/// already have an image.
fn placement_cost(
    qg: &QueryGraph,
    ng: &NetworkGraph,
    mapping: &[usize],
    v: usize,
    k: usize,
) -> f64 {
    qg.neighbors(v)
        .filter(|(j, _)| mapping[*j] != usize::MAX)
        .map(|(j, w)| w * ng.distance(k, mapping[j]))
        .sum()
}

/// Is moving weight `w` onto target `k` admissible: within limit, or a
/// strict improvement of the source target's violation?
fn admissible(loads: &[f64], limits: &[f64], from: Option<usize>, to: usize, w: f64) -> bool {
    let new_violation = (loads[to] + w - limits[to]).max(0.0);
    if new_violation <= 1e-12 {
        return true;
    }
    match from {
        Some(f) => {
            let old_violation = (loads[f] - limits[f]).max(0.0);
            new_violation < old_violation - 1e-12
        }
        None => false,
    }
}

/// Runs Algorithm 2: greedy initial mapping + iterative refinement.
///
/// `pin` fixes n-vertices to network-graph indices (targets for covered
/// nodes, anchors otherwise); it must return `Some` for every n-vertex and
/// is ignored for q-vertices.
///
/// # Panics
///
/// Panics if the network graph has no targets while the query graph has
/// q-vertices, or if `pin` fails to pin an n-vertex.
pub fn map_graph(
    qg: &QueryGraph,
    ng: &NetworkGraph,
    pin: &PinOf,
    cfg: &MapConfig,
) -> MappingResult {
    let n = qg.len();
    let k_targets = ng.target_count();
    let mut mapping = vec![usize::MAX; n];
    let limits = ng.load_limits(qg.total_weight(), cfg.alpha);
    let mut loads = vec![0.0; k_targets];

    // (a) Pin n-vertices.
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let v = &qg.vertices[i];
        if v.is_net() {
            let p = pin(v).unwrap_or_else(|| panic!("n-vertex {i} has no pin target"));
            mapping[i] = p;
            if p < k_targets {
                loads[p] += v.weight;
            }
        }
    }

    // (b) Greedy: q-vertices in descending weight order.
    let mut order: Vec<usize> = qg.query_vertices().collect();
    if !order.is_empty() {
        assert!(k_targets > 0, "cannot map q-vertices without targets");
    }
    order.sort_by(|&a, &b| {
        qg.vertices[b]
            .weight
            .partial_cmp(&qg.vertices[a].weight)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    for &v in &order {
        let w = qg.vertices[v].weight;
        let mut best_feasible: Option<(f64, usize)> = None;
        let mut best_violation: Option<(f64, f64, usize)> = None;
        for k in 0..k_targets {
            let cost = placement_cost(qg, ng, &mapping, v, k);
            if loads[k] + w <= limits[k] + 1e-12
                && best_feasible.is_none_or(|(c, bk)| cost < c || (cost == c && k < bk))
            {
                best_feasible = Some((cost, k));
            }
            // Violations compare lexicographically; WEC cost breaks ties.
            let viol = loads[k] + w - limits[k];
            if best_violation
                .is_none_or(|(vv, vc, _)| viol < vv - 1e-12 || (viol < vv + 1e-12 && cost < vc))
            {
                best_violation = Some((viol, cost, k));
            }
        }
        let k = best_feasible
            .map(|(_, k)| k)
            .or(best_violation.map(|(_, _, k)| k))
            .expect("at least one target exists");
        mapping[v] = k;
        loads[k] += w;
    }

    // Refinement.
    refine(qg, ng, &mut mapping, &mut loads, &limits, cfg);

    let final_wec = wec(qg, ng, &mapping);
    let final_loads = target_loads(qg, ng, &mapping);
    MappingResult { mapping, wec: final_wec, loads: final_loads, limits }
}

/// Iterative refinement (Algorithm 2, lines 2–20) on an existing mapping.
pub fn refine(
    qg: &QueryGraph,
    ng: &NetworkGraph,
    mapping: &mut Vec<usize>,
    loads: &mut Vec<f64>,
    limits: &[f64],
    cfg: &MapConfig,
) {
    let n = qg.len();
    let k_targets = ng.target_count();
    if k_targets == 0 || n == 0 {
        return;
    }
    let q_vertices: Vec<usize> = qg.query_vertices().collect();
    if q_vertices.is_empty() {
        return;
    }

    // cost[v][k] for q-vertices (dense rows indexed by a side table).
    let mut row_of = vec![usize::MAX; n];
    for (r, &v) in q_vertices.iter().enumerate() {
        row_of[v] = r;
    }
    let mut cost = vec![0.0; q_vertices.len() * k_targets];
    let compute_row = |cost: &mut Vec<f64>, mapping: &[usize], v: usize, r: usize| {
        for k in 0..k_targets {
            cost[r * k_targets + k] = placement_cost(qg, ng, mapping, v, k);
        }
    };
    for (r, &v) in q_vertices.iter().enumerate() {
        compute_row(&mut cost, mapping, v, r);
    }

    let mut current_wec = wec(qg, ng, mapping);
    let mut min_wec = current_wec;
    let mut min_mapping = mapping.clone();

    for _outer in 0..cfg.max_outer {
        // Restore the best mapping seen so far.
        if *mapping != min_mapping {
            mapping.clone_from(&min_mapping);
            *loads = target_loads(qg, ng, mapping);
            for (r, &v) in q_vertices.iter().enumerate() {
                compute_row(&mut cost, mapping, v, r);
            }
            current_wec = min_wec;
        }
        let wec_at_start = min_wec;

        let mut matched = vec![false; n];
        loop {
            // Global best admissible move among unmatched q-vertices.
            let mut best: Option<(f64, usize, usize)> = None; // (gain, v, k)
            for (r, &v) in q_vertices.iter().enumerate() {
                if matched[v] {
                    continue;
                }
                let from = mapping[v];
                let w = qg.vertices[v].weight;
                let c_from = cost[r * k_targets + from];
                for k in 0..k_targets {
                    if k == from {
                        continue;
                    }
                    if !admissible(loads, limits, Some(from), k, w) {
                        continue;
                    }
                    let gain = c_from - cost[r * k_targets + k];
                    if best.is_none_or(|(g, _, _)| gain > g) {
                        best = Some((gain, v, k));
                    }
                }
            }
            let Some((gain, v, k)) = best else { break };
            // Apply the move (even when gain < 0: hill climbing).
            let from = mapping[v];
            let w = qg.vertices[v].weight;
            mapping[v] = k;
            loads[from] -= w;
            loads[k] += w;
            matched[v] = true;
            current_wec -= gain;
            // Update neighbor cost rows.
            for (j, wj) in qg.neighbors(v) {
                let rj = row_of[j];
                if rj == usize::MAX {
                    continue;
                }
                for t in 0..k_targets {
                    cost[rj * k_targets + t] += wj * (ng.distance(t, k) - ng.distance(t, from));
                }
            }
            if current_wec < min_wec - 1e-9 {
                min_wec = current_wec;
                min_mapping.clone_from(mapping);
            }
        }

        if min_wec >= wec_at_start - 1e-9 {
            break; // no outer improvement
        }
    }

    mapping.clone_from(&min_mapping);
    *loads = target_loads(qg, ng, mapping);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{edge_weight, NetVertex};
    use cosmos_net::NodeId;
    use cosmos_query::QueryId;
    use cosmos_util::InterestSet;
    use proptest::prelude::*;

    const U: usize = 16;

    /// The Figure 5 example, structurally: two sources (s1 = node 0,
    /// s2 = node 1), two equal processors (n1 = node 2, n2 = node 3).
    /// Q1 reads heavily from s1, result to n1. Q2 reads from s2, result to
    /// n1. Q3's interest is contained in Q1's (overlap!), result to n2.
    /// Q4 reads from s2, result to n2.
    fn figure5() -> (QueryGraph, NetworkGraph, Vec<f64>) {
        // Substreams 0..8 from s1, 8..16 from s2.
        let rates = vec![1.0; U];
        let q1 = QgVertex::for_query(
            QueryId(1),
            InterestSet::from_indices(U, 0..8), // 8 units from s1
            0.1,
            NodeId(2),
            1.0,
            1.0,
        );
        let q2 = QgVertex::for_query(
            QueryId(2),
            InterestSet::from_indices(U, 8..16),
            0.1,
            NodeId(2),
            1.0,
            1.0,
        );
        let q3 = QgVertex::for_query(
            QueryId(3),
            InterestSet::from_indices(U, 0..4), // contained in Q1's
            0.1,
            NodeId(3),
            1.0,
            1.0,
        );
        let q4 = QgVertex::for_query(
            QueryId(4),
            InterestSet::from_indices(U, 12..16),
            0.1,
            NodeId(3),
            1.0,
            1.0,
        );
        let s1 = QgVertex::for_net(NodeId(0), InterestSet::from_indices(U, 0..8));
        let s2 = QgVertex::for_net(NodeId(1), InterestSet::from_indices(U, 8..16));
        let p1 = QgVertex::for_net(NodeId(2), InterestSet::new(U));
        let p2 = QgVertex::for_net(NodeId(3), InterestSet::new(U));
        let mut qg = QueryGraph::new(vec![q1, q2, q3, q4, s1, s2, p1, p2]);
        for i in 0..qg.len() {
            for j in (i + 1)..qg.len() {
                let w = edge_weight(&qg.vertices[i], &qg.vertices[j], &rates);
                qg.set_edge(i, j, w);
            }
        }
        // Distances: s1 close to n1, s2 close to n2, n1-n2 moderately far.
        let d = move |a: NodeId, b: NodeId| -> f64 {
            let pos = |n: NodeId| -> f64 {
                match n.0 {
                    0 => 0.0, // s1
                    2 => 1.0, // n1
                    3 => 6.0, // n2
                    1 => 7.0, // s2
                    _ => unreachable!(),
                }
            };
            (pos(a) - pos(b)).abs()
        };
        let ng = NetworkGraph::build(
            vec![
                NetVertex { node: NodeId(2), capability: 1.0 },
                NetVertex { node: NodeId(3), capability: 1.0 },
            ],
            vec![
                NetVertex { node: NodeId(0), capability: 0.0 },
                NetVertex { node: NodeId(1), capability: 0.0 },
            ],
            d,
        );
        (qg, ng, rates)
    }

    fn pin_fig5(v: &QgVertex) -> Option<usize> {
        match v.net_node()?.0 {
            2 => Some(0), // n1 is target 0
            3 => Some(1), // n2 is target 1
            0 => Some(2), // s1 anchor
            1 => Some(3), // s2 anchor
            _ => None,
        }
    }

    /// Manual WEC of a scheme (Table 2's evaluation).
    fn scheme_wec(qg: &QueryGraph, ng: &NetworkGraph, scheme: [usize; 4]) -> f64 {
        let mut mapping = vec![0usize; qg.len()];
        mapping[..4].copy_from_slice(&scheme);
        #[allow(clippy::needless_range_loop)]
        for i in 4..qg.len() {
            mapping[i] = pin_fig5(&qg.vertices[i]).unwrap();
        }
        wec(qg, ng, &mapping)
    }

    #[test]
    fn table2_scheme_ordering() {
        let (qg, ng, _) = figure5();
        // Scheme 1: queries at their proxies: Q1,Q2 → n1; Q3,Q4 → n2.
        let s1 = scheme_wec(&qg, &ng, [0, 0, 1, 1]);
        // Scheme 2: optimal ignoring sharing: Q1 near s1 (n1), Q4 near s2
        // (n2), Q2 → n2 (near s2), Q3 → n1 (near s1): loads balanced.
        let s2 = scheme_wec(&qg, &ng, [0, 1, 0, 1]);
        // Scheme 3: sharing-aware: co-locate Q1 and Q3 on n1; Q2, Q4 on n2.
        let s3 = scheme_wec(&qg, &ng, [0, 1, 1, 0]);
        // Hmm — scheme 3 per the paper co-locates the overlapping pair:
        // Q1,Q3 → n1 and Q2,Q4 → n2.
        let s3b = scheme_wec(&qg, &ng, [0, 1, 0, 1]);
        assert_eq!(s2, s3b);
        let s3_real = scheme_wec(&qg, &ng, [0, 1, 0, 1]);
        let _ = (s3, s3_real);
        // The essential Table 2 ordering: naive > sharing-aware, and the
        // sharing-aware scheme is no worse than the sharing-oblivious one.
        assert!(s1 > s2.min(s3), "naive {s1} should lose to optimized {}", s2.min(s3));
    }

    #[test]
    fn algorithm2_finds_sharing_aware_mapping() {
        let (qg, ng, _) = figure5();
        let result = map_graph(&qg, &ng, &pin_fig5, &MapConfig::default());
        // Enumerate all 16 schemes for the true optimum among balanced ones.
        let mut best = f64::INFINITY;
        for a in 0..2 {
            for b in 0..2 {
                for c in 0..2 {
                    for d in 0..2 {
                        let scheme = [a, b, c, d];
                        let loads: f64 = scheme.iter().filter(|&&k| k == 0).count() as f64 * 0.1;
                        // Balanced ⇔ 2 queries each ((1+α) · 0.2 = 0.22).
                        if !(0.19..=0.22).contains(&loads) {
                            continue;
                        }
                        best = best.min(scheme_wec(&qg, &ng, scheme));
                    }
                }
            }
        }
        assert!(
            result.wec <= best + 1e-9,
            "algorithm WEC {} worse than enumerated optimum {best}",
            result.wec
        );
        assert!(result.is_balanced(1e-9));
    }

    #[test]
    fn pinned_vertices_stay_pinned() {
        let (qg, ng, _) = figure5();
        let result = map_graph(&qg, &ng, &pin_fig5, &MapConfig::default());
        for i in 0..qg.len() {
            if qg.vertices[i].is_net() {
                assert_eq!(result.mapping[i], pin_fig5(&qg.vertices[i]).unwrap());
            } else {
                assert!(result.mapping[i] < ng.target_count());
            }
        }
    }

    #[test]
    fn load_constraint_respected_when_feasible() {
        // 4 unit-load queries, 2 equal targets → 2 each under α = 0.1.
        let rates = vec![1.0; U];
        let vertices: Vec<QgVertex> = (0..4)
            .map(|i| {
                QgVertex::for_query(
                    QueryId(i),
                    InterestSet::from_indices(U, [0usize]), // all overlap
                    1.0,
                    NodeId(0),
                    0.0,
                    1.0,
                )
            })
            .collect();
        let mut qg = QueryGraph::new(vertices);
        for i in 0..4 {
            for j in (i + 1)..4 {
                let w = edge_weight(&qg.vertices[i], &qg.vertices[j], &rates);
                qg.set_edge(i, j, w);
            }
        }
        let ng = NetworkGraph::build(
            vec![
                NetVertex { node: NodeId(0), capability: 1.0 },
                NetVertex { node: NodeId(1), capability: 1.0 },
            ],
            vec![],
            |_, _| 5.0,
        );
        let result = map_graph(&qg, &ng, &|_| None, &MapConfig::default());
        // Without the constraint all four would co-locate (overlap edges);
        // the constraint forces a 2-2 split.
        assert!(result.is_balanced(1e-9), "loads {:?}", result.loads);
        assert_eq!(result.loads, vec![2.0, 2.0]);
    }

    #[test]
    fn heterogeneous_capabilities_shift_the_limit() {
        let _rates = [1.0; U];
        let vertices: Vec<QgVertex> = (0..6)
            .map(|i| {
                QgVertex::for_query(
                    QueryId(i),
                    InterestSet::from_indices(U, [i as usize % U]),
                    1.0,
                    NodeId(0),
                    0.0,
                    1.0,
                )
            })
            .collect();
        let qg = QueryGraph::new(vertices);
        let ng = NetworkGraph::build(
            vec![
                NetVertex { node: NodeId(0), capability: 2.0 },
                NetVertex { node: NodeId(1), capability: 1.0 },
            ],
            vec![],
            |_, _| 1.0,
        );
        let result = map_graph(&qg, &ng, &|_| None, &MapConfig::default());
        assert!(result.is_balanced(1e-9));
        // Limit for target 1: 1.1 * 1 * 6 / 3 = 2.2 → at most 2 queries.
        assert!(result.loads[1] <= 2.2 + 1e-9);
    }

    #[test]
    fn empty_graph_maps_trivially() {
        let qg = QueryGraph::new(vec![]);
        let ng = NetworkGraph::build(
            vec![NetVertex { node: NodeId(0), capability: 1.0 }],
            vec![],
            |_, _| 0.0,
        );
        let r = map_graph(&qg, &ng, &|_| None, &MapConfig::default());
        assert_eq!(r.mapping.len(), 0);
        assert_eq!(r.wec, 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Refinement never worsens the greedy mapping's WEC and never
        /// unpins n-vertices.
        #[test]
        fn prop_refinement_never_worse_than_greedy(
            n in 2usize..14,
            k in 2usize..5,
            seed in 0u64..50,
        ) {
            let rates = vec![1.0; U];
            let vertices: Vec<QgVertex> = (0..n)
                .map(|i| {
                    let bits = [
                        (i * 3 + seed as usize) % U,
                        (i * 7 + 1) % U,
                        (i + seed as usize) % U,
                    ];
                    QgVertex::for_query(
                        QueryId(i as u64),
                        InterestSet::from_indices(U, bits.iter().copied()),
                        1.0 + (i % 3) as f64,
                        NodeId(0),
                        0.1,
                        1.0,
                    )
                })
                .collect();
            let mut qg = QueryGraph::new(vertices);
            for i in 0..n {
                for j in (i + 1)..n {
                    let w = edge_weight(&qg.vertices[i], &qg.vertices[j], &rates);
                    qg.set_edge(i, j, w);
                }
            }
            let targets: Vec<NetVertex> = (0..k)
                .map(|t| NetVertex { node: NodeId(t as u32), capability: 1.0 })
                .collect();
            let ng = NetworkGraph::build(targets, vec![], |a, b| {
                ((a.0 as f64) - (b.0 as f64)).abs() * 3.0 + 1.0
            });
            let result = map_graph(&qg, &ng, &|_| None, &MapConfig::default());
            // Recompute WEC from scratch: must agree with the reported one.
            let fresh = wec(&qg, &ng, &result.mapping);
            prop_assert!((fresh - result.wec).abs() < 1e-6);
            // All vertices mapped to valid targets.
            for &m in &result.mapping {
                prop_assert!(m < k);
            }
        }
    }
}
