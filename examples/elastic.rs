//! Elasticity at runtime: processors join and leave the coordinator
//! hierarchy while queries keep streaming in through the online router —
//! the "autonomous and distributed" operating mode the paper's
//! introduction motivates (§3.3's incremental tree + §3.6's fast query
//! streams).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example elastic
//! ```

use cosmos::core::hierarchy::CoordinatorTree;
use cosmos::core::online::OnlineRouter;
use cosmos::net::Deployment;
use cosmos::workload::generator::QueryGenerator;
use cosmos::workload::{PaperParams, Simulation, WorkloadConfig};
use std::time::Instant;

fn main() {
    let params = PaperParams::scaled(0.05);
    let sim = Simulation::build(params.clone(), 42);
    let k = params.k;

    // Start the hierarchy with only the first half of the processors.
    let half = sim.dep.processors().len() / 2;
    let initial: Vec<_> = sim.dep.processors()[..half].to_vec();
    let dep_small =
        Deployment::with_roles(sim.dep.topology().clone(), sim.dep.sources().to_vec(), initial);
    let mut tree = CoordinatorTree::build(&dep_small, k);
    println!(
        "bootstrapped hierarchy: {} processors, height {}",
        tree.node(tree.root()).processors.len(),
        tree.height()
    );

    // Scale out: the second half of the processors joins one by one.
    for &p in &sim.dep.processors()[half..] {
        tree.join(p, 1.0, k, &sim.dep);
    }
    tree.check_invariants().expect("invariants after scale-out");
    println!(
        "after scale-out: {} processors, height {}",
        tree.node(tree.root()).processors.len(),
        tree.height()
    );

    // Stream 2 000 queries through the online router and measure.
    let mut generator = QueryGenerator::new(WorkloadConfig::from_params(&params), 7);
    let batch = generator.generate(2_000, &sim.dep, &sim.table, 8);
    let mut router = OnlineRouter::new(&sim.dep, &tree, &sim.table, params.alpha);
    let t0 = Instant::now();
    let mut placements = std::collections::HashMap::new();
    for q in &batch {
        let p = router.insert(q);
        *placements.entry(p).or_insert(0usize) += 1;
    }
    let dt = t0.elapsed();
    println!(
        "routed {} queries end-to-end in {dt:?} ({:.0} queries/s), {} processors used",
        batch.len(),
        batch.len() as f64 / dt.as_secs_f64(),
        placements.len()
    );

    // Scale in: three processors retire; the tree merges their clusters.
    let retiring: Vec<_> = sim.dep.processors()[..3].to_vec();
    for &p in &retiring {
        assert!(tree.leave(p, k, &sim.dep));
    }
    tree.check_invariants().expect("invariants after scale-in");
    println!(
        "after scale-in: {} processors, height {}",
        tree.node(tree.root()).processors.len(),
        tree.height()
    );
    for &p in &retiring {
        assert!(tree.leaf_of(p).is_none(), "{p} should be gone");
    }
    println!("retired processors are no longer routable targets");
}
