//! Quickstart: build a wide-area deployment, submit queries, distribute
//! them with the COSMOS hierarchy, and compare the measured Pub/Sub
//! communication cost against the Naive and Random baselines.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cosmos::baselines::{naive_assignment, random_assignment};
use cosmos::workload::{PaperParams, Simulation};

fn main() {
    // The paper's environment at 5% scale: a transit-stub WAN, data
    // sources, stream processors, substreams with random rates, and a
    // coordinator tree with cluster parameter k.
    let params = PaperParams::scaled(0.05);
    println!(
        "environment: {} nodes, {} sources, {} processors, {} substreams, k = {}",
        params.topology.node_count(),
        params.n_sources,
        params.n_processors,
        params.n_substreams,
        params.k,
    );
    let mut sim = Simulation::build(params, 42);

    // 800 continuous queries from the paper's grouped-Zipf workload.
    let queries = sim.arrivals(800, 7);
    println!("generated {} queries (group-permuted Zipf interests)", queries.len());

    // Hierarchical distribution (§3.5): bottom-up coarsening, top-down
    // mapping through the coordinator tree.
    let distributor = sim.distributor();
    let outcome = distributor.distribute(&queries, 3);
    drop(distributor);
    println!(
        "hierarchical distribution: {:?} response time, {:?} total coordinator time",
        outcome.timing.response, outcome.timing.total,
    );
    sim.apply(outcome.assignment);

    // Measured weighted communication cost under Pub/Sub semantics:
    // multicast source delivery (shared links charged once) + result
    // unicast back to each proxy.
    let cosmos_cost = sim.comm_cost();
    let naive_cost = sim.comm_cost_of(&naive_assignment(&sim.specs));
    let random_cost = sim.comm_cost_of(&random_assignment(&sim.specs, &sim.dep, 9));
    println!("\nweighted communication cost (bytes x ms / s):");
    println!("  COSMOS hierarchical: {cosmos_cost:>14.0}");
    println!("  Naive (at proxies):  {naive_cost:>14.0}");
    println!("  Random placement:    {random_cost:>14.0}");
    println!(
        "  savings vs naive: {:.1}%  |  vs random: {:.1}%",
        100.0 * (1.0 - cosmos_cost / naive_cost),
        100.0 * (1.0 - cosmos_cost / random_cost),
    );
    println!("\nload stddev across processors: {:.3}", sim.load_stddev());

    // New queries arrive at runtime and are routed online (§3.6).
    let batch = sim.arrivals(100, 11);
    sim.insert_online(&batch);
    println!(
        "\nafter 100 online insertions: cost {:.0}, load stddev {:.3}",
        sim.comm_cost(),
        sim.load_stddev()
    );

    // One adaptive redistribution round (§3.7) tidies up.
    let adapted = sim.adapt_round(13);
    println!(
        "adaptation round: {} queries migrated, cost {:.0}, load stddev {:.3}",
        adapted.migrations,
        sim.comm_cost(),
        sim.load_stddev()
    );
}
