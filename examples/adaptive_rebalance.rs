//! Runtime adaptation under stream-rate perturbations (§3.7 / Figure 10):
//! the environment drifts — substream rates spike and crash — and the
//! hierarchical adaptive redistribution keeps both the load deviation and
//! the communication cost in check, migrating far fewer queries than a
//! from-scratch centralized remap would.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example adaptive_rebalance
//! ```

use cosmos::workload::{PaperParams, Simulation};

fn main() {
    let params = PaperParams::scaled(0.05);
    let mut sim = Simulation::build(params, 42);
    let queries = sim.arrivals(1_000, 7);
    let d = sim.distributor();
    let initial = d.distribute(&queries, 3);
    drop(d);
    sim.apply(initial.assignment);
    println!("initial: cost {:.0}, load stddev {:.3}", sim.comm_cost(), sim.load_stddev());

    let mut total_migrations = 0usize;
    for (event, &(kind, factor)) in
        [('I', 3.0), ('I', 2.0), ('D', 0.3), ('I', 4.0), ('D', 0.5)].iter().enumerate()
    {
        // Perturb 10% of the substreams.
        let n = sim.table.len() / 10;
        sim.perturb_rates(n, factor, 100 + event as u64);
        let before_cost = sim.comm_cost();
        let before_stddev = sim.load_stddev();
        let out = sim.adapt_round(200 + event as u64);
        total_migrations += out.migrations;
        println!(
            "event {event} ({kind}, x{factor}): cost {before_cost:.0} -> {:.0}, \
             stddev {before_stddev:.3} -> {:.3}, migrated {} queries ({:.0} state units)",
            sim.comm_cost(),
            sim.load_stddev(),
            out.migrations,
            out.moved_state,
        );
    }
    println!(
        "\ntotal migrations over 5 perturbation events: {total_migrations} \
         (out of {} queries)",
        sim.specs.len()
    );

    // A final sanity check: adaptation on a calm system is a no-op.
    let calm = sim.adapt_round(999);
    println!("calm round migrations: {}", calm.migrations);
}
