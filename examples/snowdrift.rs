//! The paper's §2.1 snow-drift monitoring story, end to end:
//!
//! 1. Parse the Table 1 queries Q3 and Q4 (CQL).
//! 2. Show containment: the composed Q5 covers both.
//! 3. Run a [`cosmos::engine::SharedEngine`]: one merged query executes,
//!    residual subscriptions split the shared result stream back into Q3's
//!    and Q4's results.
//! 4. Deliver source data through a content-based broker network with
//!    early filtering and per-link traffic accounting (Figure 2).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example snowdrift
//! ```

use cosmos::engine::tuple::Tuple;
use cosmos::engine::SharedEngine;
use cosmos::net::{NodeId, Topology};
use cosmos::pubsub::broker::BrokerNetwork;
use cosmos::pubsub::subscription::{Message, StreamProjection, SubId, Subscription};
use cosmos::query::Scalar;
use cosmos::query::{covers, merge_queries, parse_query, AttrRef, CmpOp, Predicate, QueryId};

fn main() {
    // --- Table 1 queries.
    let q3 = parse_query(
        "SELECT S2.* FROM Station1 [Range 30 Minutes] S1, Station2 [Now] S2 \
         WHERE S1.snowHeight > S2.snowHeight AND S1.snowHeight >= 10",
    )
    .expect("Q3 parses");
    let q4 = parse_query(
        "SELECT S1.snowHeight, S1.timestamp, S2.snowHeight, S2.timestamp \
         FROM Station1 [Range 1 Hour] S1, Station2 [Now] S2 \
         WHERE S1.snowHeight > S2.snowHeight",
    )
    .expect("Q4 parses");
    println!("Q3: {q3}");
    println!("Q4: {q4}");

    // --- Containment & merging (the paper's Q5).
    let merged = merge_queries(&[(QueryId(3), &q3), (QueryId(4), &q4)]).expect("mergeable");
    println!("\ncomposed covering query (the paper's Q5):\n    {}", merged.query);
    assert!(covers(&merged.query, &q3));
    assert!(covers(&merged.query, &q4));
    for residual in &merged.residuals {
        println!("residual subscription for {}:", residual.query);
        for f in &residual.filters {
            println!("    filter: {f}");
        }
    }

    // --- Shared execution: one engine query, two users' results.
    let mut shared = SharedEngine::build(vec![(QueryId(3), q3), (QueryId(4), q4)]);
    println!("\nengine runs {} merged query (instead of 2 separate ones)", shared.group_count());
    let minute = 60_000i64;
    let feeds = [
        // (stream, t in minutes, snowHeight)
        ("Station1", 0, 30), // tall reading
        ("Station2", 10, 5), // joins with S1@0 for both queries
        ("Station1", 20, 7), // below Q3's 10cm filter
        ("Station2", 25, 3), // joins S1@20 (Q4 only) and S1@0 (both)
        ("Station2", 50, 2), // S1@0 is 50min old: within Q4's 1h only
    ];
    let mut counts = std::collections::BTreeMap::new();
    for (stream, t_min, snow) in feeds {
        let tuple = Tuple::new(stream, t_min * minute).with("snowHeight", Scalar::Int(snow));
        for (qid, result) in shared.push(tuple) {
            *counts.entry(qid).or_insert(0usize) += 1;
            println!("  result for {qid}: {result}");
        }
    }
    println!("results per query: {counts:?}");
    assert!(counts[&QueryId(4)] > counts[&QueryId(3)], "Q4's window/filters are wider");

    // --- Pub/Sub delivery with early filtering (Figure 2's topology).
    let mut topo = Topology::new(8);
    let mut edge = |a: u32, b: u32| topo.add_edge(NodeId(a), NodeId(b), 1.0);
    edge(3, 2);
    edge(2, 1);
    edge(2, 4);
    edge(1, 5);
    edge(1, 6);
    edge(1, 7);
    let mut net = BrokerNetwork::new(topo);
    net.advertise("R", NodeId(3));
    let sub = |id: u64, node: u32, threshold: i64| {
        Subscription::builder(NodeId(node))
            .id(SubId(id))
            .stream(
                "R",
                StreamProjection::All,
                vec![Predicate::Cmp {
                    attr: AttrRef::new("R", "a"),
                    op: CmpOp::Gt,
                    value: Scalar::Int(threshold),
                }],
            )
            .build()
    };
    net.subscribe(sub(6, 6, 20));
    net.subscribe(sub(7, 7, 10));
    let delivered_m1 = net.publish(Message::new("R", 0).with("a", Scalar::Int(15)));
    let delivered_m2 = net.publish(Message::new("R", 1).with("a", Scalar::Int(25)));
    println!(
        "\nFigure 2 routing: m1(a=15) delivered to {delivered_m1} subscriber(s), \
         m2(a=25) to {delivered_m2}"
    );
    println!(
        "link (n2,n1) carried {} messages; link (n2,n4) carried {} (early filtering)",
        net.link_stats(NodeId(2), NodeId(1)).messages,
        net.link_stats(NodeId(2), NodeId(4)).messages,
    );
    assert_eq!(delivered_m1, 1);
    assert_eq!(delivered_m2, 2);

    // --- Bonus: a monitoring dashboard via windowed aggregates (engine
    // extension beyond the paper's worked examples).
    use cosmos::engine::AggregateEngine;
    let mut dashboard = AggregateEngine::new();
    dashboard.add_query(
        QueryId(9),
        parse_query(
            "SELECT AVG(S1.snowHeight), MAX(S1.snowHeight), COUNT(S1.snowHeight)              FROM Station1 [Range 30 Minutes] S1 WHERE S1.snowHeight >= 0",
        )
        .expect("dashboard query parses"),
    );
    let mut last = None;
    for i in 0..8i64 {
        let reading =
            Tuple::new("Station1", i * 5 * minute).with("snowHeight", Scalar::Int(10 + 3 * i));
        last = dashboard.push(reading).pop();
    }
    let (_, rollup) = last.expect("dashboard emits on every reading");
    println!(
        "
30-minute dashboard rollup: {rollup}"
    );
}
