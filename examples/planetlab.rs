//! The §4.2 prototype scenario in miniature: a PlanetLab-like wide-area
//! deployment with synthetic SensorScope sensors, random CQL queries, and
//! the head-to-head between COSMOS and the classical operator-placement
//! architecture — plus actually *executing* a few queries on the stream
//! engine against random-walk sensor readings.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example planetlab
//! ```

use cosmos::baselines::opplace::{OperatorGraph, OperatorPlacement, RateModel};
use cosmos::core::distribute::Distributor;
use cosmos::core::hierarchy::CoordinatorTree;
use cosmos::core::spec::QuerySpec;
use cosmos::pubsub::TrafficModel;
use cosmos::workload::sensors::SensorScenario;
use std::time::Instant;

fn main() {
    // 100 sensors on 5 source nodes, 30 PlanetLab-like processors.
    let scenario = SensorScenario::build(100, 5, 30, 42);
    println!(
        "deployment: {} sensors, {} sources, {} processors",
        scenario.streams.len(),
        scenario.dep.sources().len(),
        scenario.dep.processors().len()
    );
    let n_queries = 1000;
    let cql = scenario.generate_cql(n_queries, 7);
    println!("generated {n_queries} CQL queries; first one:\n    {}", cql[0].1);

    // --- Operator placement baseline: shared operator graph + placement.
    let t0 = Instant::now();
    let graph = OperatorGraph::build(
        &cql,
        &scenario.stream_rate,
        &scenario.stream_source,
        &RateModel::default(),
    );
    let placed =
        OperatorPlacement::default().place(&graph, &scenario.dep, scenario.dep.processors());
    let op_time = t0.elapsed();
    let (scans, selects, joins, outputs) = graph.kind_counts();
    println!(
        "\noperator placement: {scans} scans, {selects} shared selections, \
         {joins} shared joins, {outputs} outputs"
    );
    println!("  cost {:.0}, optimizer time {op_time:?}", placed.cost);

    // --- COSMOS: whole-query distribution over the Pub/Sub.
    let specs: Vec<QuerySpec> =
        cql.iter().map(|(id, q, proxy)| scenario.to_spec(*id, q, *proxy)).collect();
    let tree = CoordinatorTree::build(&scenario.dep, 2);
    let t1 = Instant::now();
    let d = Distributor::new(&scenario.dep, &tree, &scenario.table);
    let out = d.distribute(&specs, 3);
    let cosmos_time = t1.elapsed();
    let model = TrafficModel::new(&scenario.dep, &scenario.table);
    let interests =
        out.assignment.interests(&specs, scenario.dep.processors(), scenario.table.len());
    let flows = specs
        .iter()
        .filter_map(|q| out.assignment.processor_of(q.id).map(|p| (p, q.proxy, q.result_rate)));
    let cosmos_cost = model.source_delivery_cost(&interests) + model.result_unicast_cost(flows);
    println!("COSMOS: cost {cosmos_cost:.0}, optimizer time {cosmos_time:?}");
    println!("  cost ratio opplace/COSMOS: {:.2}", placed.cost / cosmos_cost);

    // --- Execute a handful of the queries against synthetic readings,
    // spread over parallel per-processor workers as in the real deployment.
    let mut pool = cosmos::engine::ParallelEngine::new();
    let hosted: Vec<_> = cql.iter().take(25).collect();
    for chunk in hosted.chunks(5) {
        pool.add_worker(chunk.iter().map(|(id, q, _)| (*id, q.clone())).collect());
    }
    // Interleave readings from every sensor those queries touch.
    let mut sensors: Vec<usize> = hosted
        .iter()
        .flat_map(|(_, q, _)| {
            q.streams()
                .filter_map(|s| scenario.streams.iter().position(|n| n == s))
                .collect::<Vec<_>>()
        })
        .collect();
    sensors.sort_unstable();
    sensors.dedup();
    let mut tuples = Vec::new();
    for &s in &sensors {
        tuples.extend(scenario.readings(s, 120, 0, 1_000, 5));
    }
    tuples.sort_by_key(|t| t.timestamp);
    for t in tuples {
        pool.publish(t);
    }
    let (results, stats) = pool.finish_with_stats();
    println!(
        "\nparallel engine run ({} workers): {} sensors x 120 readings -> {} join results \
         ({} probes, {} filtered by pushed-down selections)",
        5,
        sensors.len(),
        results.len(),
        stats.probes,
        stats.filtered
    );
}
