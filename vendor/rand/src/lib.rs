//! Offline stand-in for `rand`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset it uses: `rngs::StdRng` (xoshiro256++ under the
//! hood — *not* bit-compatible with upstream `StdRng`, but the workspace
//! only relies on determinism, never on the exact stream), the `Rng` and
//! `SeedableRng` traits with `gen` / `gen_range` / `gen_bool`, and
//! `seq::SliceRandom` with `shuffle` / `choose`.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = super::splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let u = f64::sample_standard(rng) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let u = f64::sample_standard(rng) as $t;
                self.start() + (self.end() - self.start()) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample over `T`'s whole domain (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_range(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::Rng;

    /// Slice helpers: in-place shuffle and uniform choice.
    pub trait SliceRandom {
        type Item;
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert!(v.as_slice().choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
