//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this stub provides
//! the benchmarking surface `crates/bench/benches/micro.rs` uses:
//! `Criterion`, `benchmark_group` / `bench_function` / `bench_with_input`,
//! `Bencher::iter`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is honest but simple: per
//! benchmark it calibrates a batch size targeting a few milliseconds, takes
//! a fixed number of samples, and reports the median ns/iteration.
//!
//! Set `CRITERION_JSON=<path>` to additionally append one JSON line per
//! benchmark (`{"name": ..., "median_ns": ...}`) for ad-hoc machine
//! consumption of a `cargo bench` run. (The repository's `bench_json`
//! binary does not use this hook — it carries its own, more heavily
//! sampled measurement loop.)

use std::fmt::Display;
use std::time::Instant;

const SAMPLES: usize = 15;
const TARGET_SAMPLE_NS: u128 = 5_000_000;

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { name: format!("{}/{}", name.into(), parameter) }
    }
}

/// Passed to the closure given to [`Bencher::iter`]-style entry points.
pub struct Bencher {
    median_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the median ns per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: how many calls fit the per-sample budget?
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().as_nanos().max(1);
        let batch = (TARGET_SAMPLE_NS / once).clamp(1, 1_000_000) as usize;
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, f64)>,
}

impl Criterion {
    fn run_one(&mut self, name: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher { median_ns: 0.0 };
        f(&mut b);
        println!("bench {name:<40} median {:>12.1} ns/iter", b.median_ns);
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            use std::io::Write;
            if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
                let _ =
                    writeln!(file, "{{\"name\": \"{name}\", \"median_ns\": {:.1}}}", b.median_ns);
            }
        }
        self.results.push((name, b.median_ns));
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name.to_string(), f);
        self
    }

    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    /// All `(name, median ns)` results so far.
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs `group/name`.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.run_one(full, f);
        self
    }

    /// Runs `group/id` with an input value.
    pub fn bench_with_input<I, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.name);
        self.criterion.run_one(full, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; prints happen per benchmark).
    pub fn finish(self) {}
}

/// Declares a benchmark group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].1 >= 0.0);
    }

    #[test]
    fn group_names_compose() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_with_input(BenchmarkId::new("f", 7), &7, |b, &x| b.iter(|| x * 2));
            g.finish();
        }
        assert_eq!(c.results()[0].0, "g/f/7");
    }
}
