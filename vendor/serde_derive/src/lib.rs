//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the minimal surface it uses. Derives are accepted and expand to
//! nothing; the sibling `serde` stub provides blanket `Serialize` /
//! `Deserialize` impls, so `T: Serialize` bounds still hold for every type.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
