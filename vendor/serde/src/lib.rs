//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this stub provides
//! the subset the workspace relies on: the `Serialize` / `Deserialize`
//! *names* (trait + derive macro, importable with one `use`), with blanket
//! impls so derive bounds are always satisfied. No actual serialization
//! machinery is included — nothing in the workspace serializes through
//! serde itself (JSON output is hand-rolled in `cosmos-bench`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; blanket-implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait; blanket-implemented for every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
