//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this stub provides
//! the property-testing surface the workspace uses: the `proptest!` macro
//! (with optional `#![proptest_config(...)]` header), `prop_assert!` /
//! `prop_assert_eq!`, range / tuple / `collection::vec` / `sample::select`
//! strategies, and `Strategy::prop_map`.
//!
//! Compared to upstream there is **no shrinking**: a failing case panics
//! with its deterministic case index, which is enough to reproduce it (the
//! generator is seeded from the test's module path and case number, so
//! failures are stable across runs).

pub mod test_runner {
    /// Deterministic generator backing every strategy.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// A generator seeded from a test label and case index.
        pub fn deterministic(label: &str, case: u32) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in label.as_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut state = h ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            // Warm the state so nearby cases decorrelate.
            splitmix64(&mut state);
            Self { state }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }

        /// A float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform index in `[0, bound)`; `bound` must be non-zero.
        pub fn index(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 128 }
        }
    }
}

pub use test_runner::ProptestConfig;

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Numeric types uniformly samplable from a half-open range.
    pub trait RangeValue: Copy {
        fn sample_in(range: &Range<Self>, rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_range_value_int {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn sample_in(range: &Range<Self>, rng: &mut TestRng) -> Self {
                    assert!(range.start < range.end, "empty strategy range");
                    let span = (range.end as i128 - range.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (range.start as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_value_float {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn sample_in(range: &Range<Self>, rng: &mut TestRng) -> Self {
                    range.start + (range.end - range.start) * rng.next_f64() as $t
                }
            }
        )*};
    }
    impl_range_value_float!(f32, f64);

    impl<T: RangeValue> Strategy for Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_in(self, rng)
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F2)
    }
}

pub use strategy::Strategy;

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with strategy-driven elements and random length.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` strategy: `size` is a half-open length range.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.index(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed set of values.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// A strategy yielding clones of elements of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.index(self.options.len())].clone()
        }
    }
}

/// Fails the enclosing property when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), left, right
            ));
        }
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )+
                    let result: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(msg) = result {
                        panic!(
                            "property {} failed at case {case}: {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
}

/// Declares property tests; each parameter is drawn from its strategy.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::ProptestConfig::default());
            $($rest)*
        }
    };
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = crate::test_runner::TestRng::deterministic("t", 3);
        let mut b = crate::test_runner::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_are_in_bounds(x in 3usize..17, y in -5i64..5, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in crate::collection::vec((0usize..10, 0usize..10), 2..8),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            for (a, b) in v {
                prop_assert!(a < 10 && b < 10);
            }
        }

        #[test]
        fn select_and_map(
            s in crate::sample::select(vec![1u32, 2, 3]),
            m in (0u32..5).prop_map(|x| x * 2),
        ) {
            prop_assert!([1, 2, 3].contains(&s));
            prop_assert_eq!(m % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_header_accepted(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }
}
