//! Offline stand-in for `serde_json`.
//!
//! The build environment has no access to crates.io, so this stub provides
//! what the figure binaries use: a `Value` tree, the `json!` object/array
//! macro, and `to_string` / `to_string_pretty`. There is no parser and no
//! derive-driven serialization — values are built with `json!` and
//! `From` conversions.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::Int(v as i64) }
        }
    )*};
}
from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(f64::from(v))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Object field access; `Null` for missing keys / non-objects.
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v).unwrap_or(&NULL)
            }
            _ => &NULL,
        }
    }
}

impl Value {
    /// Numeric view, if this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn format_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Ensure floats stay floats on re-read.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

impl Value {
    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        let pad = |out: &mut String, n: usize| {
            if pretty {
                out.push('\n');
                for _ in 0..n {
                    out.push_str("  ");
                }
            }
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(v) => out.push_str(&format_f64(*v)),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    item.write(out, indent + 1, pretty);
                }
                pad(out, indent);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    escape_into(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, indent + 1, pretty);
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        f.write_str(&out)
    }
}

/// Serialization error (the stub never produces one; kept for signature
/// compatibility).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stub error")
    }
}

impl std::error::Error for Error {}

/// Compact rendering.
pub fn to_string(value: &Value) -> Result<String, Error> {
    Ok(value.to_string())
}

/// Pretty rendering with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    value.write(&mut out, 0, true);
    Ok(out)
}

/// Builds a [`Value`] from a JSON-shaped literal with expression values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:tt)* ]) => { $crate::json_array!([ $($item)* ]) };
    ({ $($field:tt)* }) => { $crate::json_object!(@fields [] $($field)*) };
    ($other:expr) => { $crate::Value::from($other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    (@fields [$($done:tt)*]) => {
        $crate::Value::Object(vec![$($done)*])
    };
    (@fields [$($done:tt)*] $key:literal : {$($inner:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json_object!(@fields
            [$($done)* ($key.to_string(), $crate::json!({$($inner)*})),]
            $($($rest)*)?)
    };
    (@fields [$($done:tt)*] $key:literal : [$($inner:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json_object!(@fields
            [$($done)* ($key.to_string(), $crate::json!([$($inner)*])),]
            $($($rest)*)?)
    };
    (@fields [$($done:tt)*] $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $crate::json_object!(@fields
            [$($done)* ($key.to_string(), $crate::Value::from($value)),]
            $($($rest)*)?)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_macro_and_pretty() {
        let rows = vec![1.5f64, 2.0];
        let v = json!({"scale": 0.1, "rows": rows, "name": "x", "n": 3usize});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"scale\": 0.1"));
        assert!(s.contains("\"rows\": ["));
        assert!(s.contains("\"n\": 3"));
        let compact = to_string(&v).unwrap();
        assert!(compact.contains("\"name\":\"x\""));
    }

    #[test]
    fn nested_objects() {
        let v = json!({"outer": {"inner": 1, "list": [1, 2]}, "ok": true});
        let s = v.to_string();
        assert!(s.contains("\"inner\":1"));
        assert!(s.contains("[1,2]"));
        assert!(s.contains("\"ok\":true"));
    }

    #[test]
    fn escaping() {
        let v = json!({"k": "a\"b\\c\nd"});
        assert_eq!(v.to_string(), r#"{"k":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn float_formatting_round_trips_type() {
        assert_eq!(format_f64(2.0), "2.0");
        assert_eq!(format_f64(0.25), "0.25");
    }
}
