//! Offline stand-in for `parking_lot`: a `Mutex` with the panic-free
//! `lock()` signature, backed by `std::sync::Mutex` (poison is swallowed —
//! matching parking_lot's no-poisoning semantics).

use std::sync::MutexGuard;

/// A mutual-exclusion primitive whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
