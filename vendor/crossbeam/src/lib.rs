//! Offline stand-in for `crossbeam`: the `channel` surface the workspace
//! uses. Unlike the original `std::sync::mpsc`-backed shim this is a real
//! MPMC channel — `Sender` *and* `Receiver` are `Clone`, and a `bounded`
//! constructor provides backpressure — built on a `Mutex`-guarded
//! `VecDeque` with two condvars (`not_empty` / `not_full`). The parallel
//! broker data plane shares one receiver among several publisher workers,
//! which `std::sync::mpsc` cannot express.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};

    /// Error returned when the receiving side has hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending side has hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now, but senders remain.
        Empty,
        /// No message available and every sender is gone.
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// `None` = unbounded.
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    fn lock<T>(shared: &Shared<T>) -> MutexGuard<'_, State<T>> {
        shared.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The sending half of a channel. Cloning adds a producer.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloning adds a consumer: clones
    /// *compete* for messages (MPMC work-queue semantics), they do not
    /// each see every message.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).senders += 1;
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.shared);
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Wake blocked receivers so they observe disconnection.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).receivers += 1;
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.shared);
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                // Wake blocked senders so they observe disconnection.
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; errors if every receiver is gone. On a bounded
        /// channel this blocks while the queue is at capacity.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = lock(&self.shared);
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.shared.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; errors when the queue is drained
        /// and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = lock(&self.shared);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = lock(&self.shared);
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Creates a bounded MPMC channel: `send` blocks while `cap` messages
    /// are queued. A capacity of 0 is rounded up to 1 (no rendezvous
    /// semantics — nothing in the workspace needs them).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    #[cfg(test)]
    mod tests {
        use super::{bounded, unbounded, TryRecvError};
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            std::thread::spawn(move || {
                for i in 0..10 {
                    tx2.send(i).unwrap();
                }
            });
            let mut got: Vec<u32> = (0..10).map(|_| rx.recv().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
            drop(tx);
            assert!(rx.recv().is_err());
        }

        #[test]
        fn cloned_receivers_compete_for_messages() {
            let (tx, rx) = unbounded::<u64>();
            let seen = Arc::new(AtomicUsize::new(0));
            std::thread::scope(|s| {
                for _ in 0..3 {
                    let rx = rx.clone();
                    let seen = Arc::clone(&seen);
                    s.spawn(move || {
                        while rx.recv().is_ok() {
                            seen.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
                for i in 0..300 {
                    tx.send(i).unwrap();
                }
                drop(tx);
                drop(rx);
            });
            assert_eq!(seen.load(Ordering::Relaxed), 300, "each message consumed exactly once");
        }

        #[test]
        fn bounded_channel_applies_backpressure() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            // The queue is full: a third send must block until a recv
            // frees a slot in the consumer thread.
            let consumer = std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(50));
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            });
            tx.send(3).unwrap();
            drop(tx);
            assert_eq!(consumer.join().unwrap(), vec![1, 2, 3]);
        }

        #[test]
        fn send_fails_once_receivers_are_gone() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert!(tx.send(7).is_err());
        }

        #[test]
        fn try_recv_reports_empty_then_disconnected() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(5).unwrap();
            assert_eq!(rx.try_recv(), Ok(5));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
