//! Offline stand-in for `crossbeam`: the `channel::unbounded` MPSC surface
//! the workspace uses, backed by `std::sync::mpsc`.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side has hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending side has hung up.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; errors if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; errors when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::unbounded;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            std::thread::spawn(move || {
                for i in 0..10 {
                    tx2.send(i).unwrap();
                }
            });
            let mut got: Vec<u32> = (0..10).map(|_| rx.recv().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
